"""Node reweighting: Algorithms 2 (backward) and 4 (forward) of the paper.

Each node ``v`` receives a forward weight ``w_fwd[v]`` and a backward
weight ``w_bwd[v]``; coordinate descent on Eq. (6) updates one weight at
a time by its closed-form minimizer (Eq. 8 / Eq. 23) clamped to
``>= 1/n``. A full epoch costs ``O(n k'^2)`` thanks to the shared
aggregates of Eq. (9)/(10)/(13) (named ``xi, chi, rho1, rho2, lam_mat,
phi`` as in the paper) with ``rho1, rho2`` maintained incrementally
(Eq. 11 / 26).

Three update modes are provided:

* ``sequential`` — the faithful Gauss–Seidel loop of Algorithm 2/4
  (random node order, incremental ``rho`` updates);
* ``jacobi`` — all coordinates updated from the same aggregates in one
  vectorized shot (an ablation; much faster on huge graphs, slightly
  different trajectory);
* naive reference functions that evaluate the Eq. (7)/(23) sums directly
  in ``O(n k')`` per node — used only by tests to pin down the fast path.

Both update modes additionally have a **chunked engine** (selected by
``chunk_size``/``workers``): the per-node terms that do not depend on
the evolving ``rho`` vectors — which is everything except one dot
product per node — are precomputed over row chunks (in parallel when
``workers > 1``), leaving a Gauss–Seidel recurrence of one fused
``O(k')`` dot and one ``O(k')`` axpy per node. The chunked trajectory is
deterministic given ``(seed, chunk_size)`` and independent of
``workers``; it follows the exact sequential trajectory up to
floating-point reassociation (observed ``~1e-14`` on the weights).

``b1`` handling: Eq. (14) approximates ``b1`` via the AM-GM sandwich of
Eq. (12) with a ``k'/2`` multiplier. Since ``b1`` is exactly
``Y_v Lambda Y_v^T - w_fwd[v]^2 (X_v . Y_v)^2`` and ``Y_v Lambda Y_v^T``
is already needed for ``a3``, we also expose ``exact_b1=True`` as a
zero-extra-cost ablation of this design choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionError, ParameterError
from ..parallel import parallel_map, payload
from ..ppr.chunks import iter_chunks, resolve_chunk_size
from ..rng import ensure_rng

__all__ = [
    "BackwardAggregates", "ForwardAggregates",
    "backward_aggregates", "forward_aggregates",
    "update_backward_weights", "update_forward_weights",
    "naive_backward_terms", "naive_forward_terms",
]


def _check_inputs(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                  w_bwd: np.ndarray) -> None:
    if x.ndim != 2 or x.shape != y.shape:
        raise DimensionError("X and Y must be (n, k') with identical shapes")
    n = x.shape[0]
    if w_fwd.shape != (n,) or w_bwd.shape != (n,):
        raise DimensionError("weights must be length-n vectors")


@dataclass
class BackwardAggregates:
    """Shared terms of Eq. (9), (10), (13) for the backward sweep."""

    xi: np.ndarray        # sum_u d_out(u) w_fwd[u] X_u               (k',)
    chi: np.ndarray       # sum_u w_fwd[u] X_u                        (k',)
    lam_mat: np.ndarray   # sum_u w_fwd[u]^2 X_u^T X_u                (k', k')
    rho1: np.ndarray      # sum_v w_bwd[v] Y_v                        (k',)
    rho2: np.ndarray      # sum_v w_fwd[v]^2 w_bwd[v] (X_v.Y_v) X_v   (k',)
    phi: np.ndarray       # phi[r] = sum_u w_fwd[u]^2 X_u[r]^2        (k',)


@dataclass
class ForwardAggregates:
    """Shared terms of Eq. (24), (25), (28) for the forward sweep."""

    xi: np.ndarray        # sum_v d_in(v) w_bwd[v] Y_v                (k',)
    chi: np.ndarray       # sum_v w_bwd[v] Y_v                        (k',)
    lam_mat: np.ndarray   # sum_v w_bwd[v]^2 Y_v^T Y_v                (k', k')
    rho1: np.ndarray      # sum_u w_fwd[u] X_u                        (k',)
    rho2: np.ndarray      # sum_v w_fwd[v] w_bwd[v]^2 (X_v.Y_v) Y_v   (k',)
    phi: np.ndarray       # phi[r] = sum_v w_bwd[v]^2 Y_v[r]^2        (k',)


def backward_aggregates(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                        w_bwd: np.ndarray, d_out: np.ndarray,
                        ) -> BackwardAggregates:
    """Compute Lines 1-3 of Algorithm 2 in ``O(n k'^2)``."""
    xy = np.einsum("ij,ij->i", x, y)
    wf2 = w_fwd * w_fwd
    return BackwardAggregates(
        xi=(d_out * w_fwd) @ x,
        chi=w_fwd @ x,
        lam_mat=x.T @ (wf2[:, None] * x),
        rho1=w_bwd @ y,
        rho2=(wf2 * w_bwd * xy) @ x,
        phi=wf2 @ (x * x),
    )


def forward_aggregates(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                       w_bwd: np.ndarray, d_in: np.ndarray,
                       ) -> ForwardAggregates:
    """Compute Line 1-3 of Algorithm 4 in ``O(n k'^2)``."""
    xy = np.einsum("ij,ij->i", x, y)
    wb2 = w_bwd * w_bwd
    return ForwardAggregates(
        xi=(d_in * w_bwd) @ y,
        chi=w_bwd @ y,
        lam_mat=y.T @ (wb2[:, None] * y),
        rho1=w_fwd @ x,
        rho2=(w_fwd * wb2 * xy) @ y,
        phi=wb2 @ (y * y),
    )


def _solve(numerator: float, denominator: float, floor: float) -> float:
    if denominator <= 1e-300:
        return floor
    return max(floor, numerator / denominator)


# ----------------------------------------------------------------------
# Chunked engine. Written once in the *backward* orientation; the
# forward sweep is the same computation with (x, y), (w_fwd, w_bwd) and
# (d_out, d_in) swapped (compare the aggregate definitions above).
# ----------------------------------------------------------------------

def _sweep_chunk(bounds: tuple[int, int]) -> tuple[np.ndarray, ...]:
    """Rho-independent per-node terms of Eq. (8) for one row chunk.

    Returns ``(z, u, num0, denom)`` where for node ``v`` the sequential
    update reduces to ``new = clamp((num0[v] - r . z[v]) / denom[v])``
    followed by ``r += (new - w0[v]) * u[v]`` with the fused state
    ``r = [rho1, rho2]``.
    """
    (x, y, w_fwd, w_bwd, d_in, lam, agg, xy, wf2, exact_b1) = payload()
    start, stop = bounds
    k_prime = x.shape[1]
    xc, yc = x[start:stop], y[start:stop]
    wfc, w0 = w_fwd[start:stop], w_bwd[start:stop]
    xyc, wf2c = xy[start:stop], wf2[start:stop]
    lam_yc = yc @ agg.lam_mat.T                 # row v = lam_mat @ y[v]
    y_lam_y = np.einsum("ij,ij->i", lam_yc, yc)
    a1 = yc @ agg.xi
    proj = yc @ agg.chi - wfc * xyc
    a2 = d_in[start:stop] * proj
    b2 = proj * proj
    if exact_b1:
        b1 = y_lam_y - wf2c * xyc * xyc
    else:
        b1 = 0.5 * k_prime * ((yc * yc) @ agg.phi
                              - wf2c * ((yc * xc) ** 2).sum(axis=1))
    # a3 = rho1.lam_y[v] - w0 y_lam_y - rho2.y[v] + w0 wf2 xy^2; the two
    # rho dots are r . z[v], the rest folds into num0 (each node is
    # visited once per epoch, so its own weight is still w0 there).
    z = np.hstack([lam_yc, -yc])
    u = np.hstack([yc, (wf2c * xyc)[:, None] * xc])
    num0 = a1 + a2 + w0 * y_lam_y - w0 * wf2c * xyc * xyc
    denom = b1 + b2 + lam
    return z, u, num0, denom


def _jacobi_chunk(bounds: tuple[int, int]) -> np.ndarray:
    """One row chunk of the vectorized Jacobi update (Eq. 8, frozen rho)."""
    (x, y, w_fwd, w_bwd, d_in, lam, agg, xy, wf2, exact_b1) = payload()
    start, stop = bounds
    n = x.shape[0]
    k_prime = x.shape[1]
    floor = 1.0 / n
    xc, yc = x[start:stop], y[start:stop]
    wfc, wbc = w_fwd[start:stop], w_bwd[start:stop]
    xyc, wf2c = xy[start:stop], wf2[start:stop]
    y_chi = yc @ agg.chi
    proj = y_chi - wfc * xyc
    a1 = yc @ agg.xi
    a2 = d_in[start:stop] * proj
    b2 = proj * proj
    y_lam = yc @ agg.lam_mat
    y_lam_y = np.einsum("ij,ij->i", y_lam, yc)
    a3 = (y_lam @ agg.rho1 - wbc * y_lam_y - yc @ agg.rho2
          + wbc * wf2c * xyc * xyc)
    if exact_b1:
        b1 = y_lam_y - wf2c * xyc * xyc
    else:
        b1 = 0.5 * k_prime * ((yc * yc) @ agg.phi
                              - wf2c * ((yc * xc) ** 2).sum(axis=1))
    denom = b1 + b2 + lam
    new = np.where(denom > 1e-300,
                   (a1 + a2 - a3) / np.maximum(denom, 1e-300), floor)
    return np.maximum(floor, new)


def _chunked_update(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                    w_bwd: np.ndarray, d_out: np.ndarray, d_in: np.ndarray,
                    lam: float, *, mode: str, exact_b1: bool, seed,
                    chunk_size: int | None, workers: int) -> np.ndarray:
    """Chunked epoch in the backward orientation; returns new ``w_bwd``."""
    if mode not in ("sequential", "jacobi"):
        raise ParameterError(f"unknown update mode {mode!r}")
    n = x.shape[0]
    floor = 1.0 / n
    size = resolve_chunk_size(n, chunk_size)
    bounds = list(iter_chunks(n, size))
    agg = backward_aggregates(x, y, w_fwd, w_bwd, d_out)
    xy = np.einsum("ij,ij->i", x, y)
    wf2 = w_fwd * w_fwd
    task_payload = (x, y, w_fwd, w_bwd, d_in, lam, agg, xy, wf2, exact_b1)

    if mode == "jacobi":
        blocks = parallel_map(_jacobi_chunk, bounds, workers=workers,
                              payload=task_payload)
        return blocks[0] if len(blocks) == 1 else np.concatenate(blocks)

    blocks = parallel_map(_sweep_chunk, bounds, workers=workers,
                          payload=task_payload)
    z = np.concatenate([b[0] for b in blocks])
    u = np.concatenate([b[1] for b in blocks])
    num0 = np.concatenate([b[2] for b in blocks])
    denom = np.concatenate([b[3] for b in blocks])

    rng = ensure_rng(seed)
    perm = rng.permutation(n)
    # Permutation-ordered contiguous copies; plain-python sequences keep
    # the per-node interpreter overhead at a couple of calls.
    z_rows = list(z[perm])
    u_rows = list(u[perm])
    num0_p = num0[perm].tolist()
    denom_p = denom[perm].tolist()
    w0_p = w_bwd[perm].astype(np.float64).tolist()
    r = np.concatenate([agg.rho1, agg.rho2])
    new_p = np.empty(n)
    dot = np.dot
    for i in range(n):
        d = denom_p[i]
        numer = num0_p[i] - dot(r, z_rows[i])
        new = floor if d <= 1e-300 else max(floor, numer / d)
        delta = new - w0_p[i]
        if delta != 0.0:
            r += delta * u_rows[i]
        new_p[i] = new
    out = np.empty(n)
    out[perm] = new_p
    return out


def update_backward_weights(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                            w_bwd: np.ndarray, d_out: np.ndarray,
                            d_in: np.ndarray, lam: float, *,
                            mode: str = "sequential", exact_b1: bool = False,
                            seed=None, chunk_size: int | None = None,
                            workers: int = 1) -> np.ndarray:
    """One epoch of Algorithm 2 (``updateBwdWeights``); returns new weights.

    ``chunk_size``/``workers`` select the chunked engine (see the module
    docstring); the default runs the original single-pass path.
    """
    _check_inputs(x, y, w_fwd, w_bwd)
    if chunk_size is not None or workers != 1:
        return _chunked_update(x, y, w_fwd, w_bwd, d_out, d_in, lam,
                               mode=mode, exact_b1=exact_b1, seed=seed,
                               chunk_size=chunk_size, workers=workers)
    if mode == "jacobi":
        # one full-width chunk is the single-shot arithmetic, exactly
        return _chunked_update(x, y, w_fwd, w_bwd, d_out, d_in, lam,
                               mode="jacobi", exact_b1=exact_b1, seed=None,
                               chunk_size=max(1, x.shape[0]), workers=1)
    if mode != "sequential":
        raise ParameterError(f"unknown update mode {mode!r}")
    n, k_prime = x.shape
    floor = 1.0 / n
    agg = backward_aggregates(x, y, w_fwd, w_bwd, d_out)
    xy = np.einsum("ij,ij->i", x, y)
    wf2 = w_fwd * w_fwd

    rng = ensure_rng(seed)
    out = w_bwd.astype(np.float64).copy()
    rho1 = agg.rho1.copy()
    rho2 = agg.rho2.copy()
    for v in rng.permutation(n):
        yv = y[v]
        xv = x[v]
        xy_v = xy[v]
        lam_yv = agg.lam_mat @ yv
        y_lam_y = float(yv @ lam_yv)
        a1 = float(agg.xi @ yv)
        proj = float(agg.chi @ yv) - w_fwd[v] * xy_v
        a2 = d_in[v] * proj
        b2 = proj * proj
        a3 = (float(rho1 @ lam_yv) - out[v] * y_lam_y - float(rho2 @ yv)
              + out[v] * wf2[v] * xy_v * xy_v)
        if exact_b1:
            b1 = y_lam_y - wf2[v] * xy_v * xy_v
        else:
            b1 = 0.5 * k_prime * (float((yv * yv) @ agg.phi)
                                  - wf2[v] * float(((yv * xv) ** 2).sum()))
        new = _solve(a1 + a2 - a3, b1 + b2 + lam, floor)
        delta = new - out[v]
        if delta != 0.0:
            rho1 += delta * yv                                   # Eq. (11)
            rho2 += delta * wf2[v] * xy_v * xv
            out[v] = new
    return out


def update_forward_weights(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                           w_bwd: np.ndarray, d_out: np.ndarray,
                           d_in: np.ndarray, lam: float, *,
                           mode: str = "sequential", exact_b1: bool = False,
                           seed=None, chunk_size: int | None = None,
                           workers: int = 1) -> np.ndarray:
    """One epoch of Algorithm 4 (``updateFwdWeights``); returns new weights.

    The forward sweep is the backward sweep with the roles of
    ``(x, w_fwd, d_out)`` and ``(y, w_bwd, d_in)`` exchanged, which is
    how the chunked engine evaluates it.
    """
    _check_inputs(x, y, w_fwd, w_bwd)
    if chunk_size is not None or workers != 1:
        return _chunked_update(y, x, w_bwd, w_fwd, d_in, d_out, lam,
                               mode=mode, exact_b1=exact_b1, seed=seed,
                               chunk_size=chunk_size, workers=workers)
    if mode == "jacobi":
        return _chunked_update(y, x, w_bwd, w_fwd, d_in, d_out, lam,
                               mode="jacobi", exact_b1=exact_b1, seed=None,
                               chunk_size=max(1, x.shape[0]), workers=1)
    if mode != "sequential":
        raise ParameterError(f"unknown update mode {mode!r}")
    n, k_prime = x.shape
    floor = 1.0 / n
    agg = forward_aggregates(x, y, w_fwd, w_bwd, d_in)
    xy = np.einsum("ij,ij->i", x, y)
    wb2 = w_bwd * w_bwd

    rng = ensure_rng(seed)
    out = w_fwd.astype(np.float64).copy()
    rho1 = agg.rho1.copy()
    rho2 = agg.rho2.copy()
    for u in rng.permutation(n):
        xu = x[u]
        yu = y[u]
        xy_u = xy[u]
        lam_xu = agg.lam_mat @ xu
        x_lam_x = float(xu @ lam_xu)
        a1 = float(agg.xi @ xu)
        proj = float(agg.chi @ xu) - w_bwd[u] * xy_u
        a2 = d_out[u] * proj
        b2 = proj * proj
        a3 = (float(rho1 @ lam_xu) - out[u] * x_lam_x - float(rho2 @ xu)
              + out[u] * wb2[u] * xy_u * xy_u)
        if exact_b1:
            b1 = x_lam_x - wb2[u] * xy_u * xy_u
        else:
            b1 = 0.5 * k_prime * (float((xu * xu) @ agg.phi)
                                  - wb2[u] * float(((xu * yu) ** 2).sum()))
        new = _solve(a1 + a2 - a3, b1 + b2 + lam, floor)
        delta = new - out[u]
        if delta != 0.0:
            rho1 += delta * xu                                   # Eq. (26)
            rho2 += delta * wb2[u] * xy_u * yu
            out[u] = new
    return out


# ----------------------------------------------------------------------
# Naive O(n k') / O(n^2) reference implementations of the Eq. (7) / (23)
# terms, used by the test suite to validate the accelerated formulas.
# ----------------------------------------------------------------------

def naive_backward_terms(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                         w_bwd: np.ndarray, d_out: np.ndarray,
                         d_in: np.ndarray, v: int,
                         ) -> tuple[float, float, float, float, float]:
    """``(a1, a2, a3, b1_exact, b2)`` for node ``v`` straight from Eq. (7)."""
    _check_inputs(x, y, w_fwd, w_bwd)
    n = x.shape[0]
    s = x @ y[v]                        # s[u] = X_u . Y_v
    ws = w_fwd * s
    a1 = float((d_out * ws).sum())
    a2 = float(d_in[v] * (ws.sum() - ws[v]))
    # G[u, v'] = w_fwd[u] (X_u . Y_v') w_bwd[v']
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    row_sums = g.sum(axis=1) - g[np.arange(n), np.arange(n)] - g[:, v]
    # v' = v was subtracted twice for u = v; add it back once
    row_sums[v] += g[v, v]
    a3 = float((row_sums * ws).sum())
    b1 = float((ws * ws).sum() - ws[v] * ws[v])
    b2 = float((ws.sum() - ws[v]) ** 2)
    return a1, a2, a3, b1, b2


def naive_forward_terms(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                        w_bwd: np.ndarray, d_out: np.ndarray,
                        d_in: np.ndarray, u: int,
                        ) -> tuple[float, float, float, float, float]:
    """``(a1', a2', a3', b1'_exact, b2')`` for node ``u`` from Eq. (23)."""
    _check_inputs(x, y, w_fwd, w_bwd)
    n = x.shape[0]
    s = y @ x[u]                        # s[v] = X_u . Y_v
    ws = w_bwd * s
    a1 = float((d_in * ws).sum())
    a2 = float(d_out[u] * (ws.sum() - ws[u]))
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    col_sums = g.sum(axis=0) - g[np.arange(n), np.arange(n)] - g[u, :]
    col_sums[u] += g[u, u]
    a3 = float((col_sums * ws).sum())
    b1 = float((ws * ws).sum() - ws[u] * ws[u])
    b2 = float((ws.sum() - ws[u]) ** 2)
    return a1, a2, a3, b1, b2
