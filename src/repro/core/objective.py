"""The node-reweighting objective of Eq. (6).

``O(w_fwd, w_bwd)`` penalizes the gap between each node's reweighted
total connection strength and its degree:

    sum_v ( in_strength(v)  - d_in(v)  )^2
  + sum_u ( out_strength(u) - d_out(u) )^2
  + lambda * (||w_fwd||^2 + ||w_bwd||^2)

where ``in_strength(v) = sum_{u != v} w_fwd[u] X_u . Y_v * w_bwd[v]`` and
symmetrically for ``out_strength``. Evaluating it exactly costs only
``O(n k')`` thanks to the shared sums ``chi = sum_u w_fwd[u] X_u`` and
``chi_b = sum_v w_bwd[v] Y_v``.
"""

from __future__ import annotations

import numpy as np

from ..errors import DimensionError

__all__ = ["reweighting_objective", "strength_vectors"]


def _check(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
           w_bwd: np.ndarray) -> None:
    if x.shape != y.shape:
        raise DimensionError("X and Y must have identical shapes")
    n = x.shape[0]
    if w_fwd.shape != (n,) or w_bwd.shape != (n,):
        raise DimensionError("weight vectors must have length n")


def strength_vectors(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                     w_bwd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-node total (out_strength, in_strength), excluding self pairs."""
    _check(x, y, w_fwd, w_bwd)
    chi_f = w_fwd @ x                       # sum_u w_fwd[u] X_u
    chi_b = w_bwd @ y                       # sum_v w_bwd[v] Y_v
    xy_diag = np.einsum("ij,ij->i", x, y)   # X_v . Y_v
    in_strength = w_bwd * (y @ chi_f - w_fwd * xy_diag)
    out_strength = w_fwd * (x @ chi_b - w_bwd * xy_diag)
    return out_strength, in_strength


def reweighting_objective(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                          w_bwd: np.ndarray, d_out: np.ndarray,
                          d_in: np.ndarray, lam: float) -> float:
    """Evaluate Eq. (6) exactly in ``O(n k')``."""
    out_strength, in_strength = strength_vectors(x, y, w_fwd, w_bwd)
    gap_in = in_strength - d_in
    gap_out = out_strength - d_out
    reg = lam * (float(w_fwd @ w_fwd) + float(w_bwd @ w_bwd))
    return float(gap_in @ gap_in) + float(gap_out @ gap_out) + reg
