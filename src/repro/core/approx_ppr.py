"""Algorithm 1 of the paper: ApproxPPR.

Factorizes the truncated PPR matrix ``Pi' = sum_{i=1..ell1}
alpha (1-alpha)^i P^i`` into forward embeddings ``X`` and backward
embeddings ``Y`` (``X @ Y.T ~= Pi'``) without ever materializing an
``n x n`` matrix:

1. ``U, Sigma, V = BKSVD(A, k', eps)``            (randomized SVD of A)
2. ``X_1 = D^-1 U sqrt(Sigma)``, ``Y = V sqrt(Sigma)``
   so that ``X_1 @ Y.T ~= D^-1 A = P``
3. ``X_i = (1 - alpha) P X_{i-1} + X_1`` for ``i = 2..ell1``
4. ``X = alpha (1 - alpha) X_ell1``

Theorem 1 bounds the entrywise error by
``(1+eps) sigma_{k'+1} (1-alpha)(1-(1-alpha)^ell1) + (1-alpha)^(ell1+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import bksvd, randomized_svd
from ..rng import ensure_rng

__all__ = ["ApproxPPRConfig", "approx_ppr_embeddings", "theorem1_bound"]


@dataclass(frozen=True)
class ApproxPPRConfig:
    """Inputs of Algorithm 1 (names follow the paper).

    ``k_prime`` is the per-side dimensionality ``k' = k/2``; the paper's
    defaults are ``alpha=0.15, ell1=20, eps=0.2``.
    """

    k_prime: int
    alpha: float = 0.15
    ell1: int = 20
    eps: float = 0.2
    svd: str = "bksvd"           # "bksvd" | "rsvd" | "exact"
    seed: int | None = 0

    def validate(self) -> None:
        if self.k_prime < 1:
            raise ParameterError("k_prime must be >= 1")
        if not 0.0 < self.alpha < 1.0:
            raise ParameterError("alpha must be in (0, 1)")
        if self.ell1 < 1:
            raise ParameterError("ell1 must be >= 1")
        if self.eps <= 0:
            raise ParameterError("eps must be positive")
        if self.svd not in ("bksvd", "rsvd", "exact"):
            raise ParameterError(f"unknown svd backend {self.svd!r}")


def _factorize_adjacency(graph: Graph, config: ApproxPPRConfig,
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    adjacency = graph.adjacency()
    rng = ensure_rng(config.seed)
    if config.svd == "bksvd":
        return bksvd(adjacency, config.k_prime, eps=config.eps, seed=rng)
    if config.svd == "rsvd":
        return randomized_svd(adjacency, config.k_prime, seed=rng)
    dense = adjacency.toarray()
    u, s, vt = np.linalg.svd(dense, full_matrices=False)
    return u[:, :config.k_prime], s[:config.k_prime], vt[:config.k_prime].T


def approx_ppr_embeddings(graph: Graph, config: ApproxPPRConfig,
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Run Algorithm 1; returns ``(X, Y)`` with ``X @ Y.T ~= Pi'``."""
    config.validate()
    if config.k_prime > graph.num_nodes:
        raise ParameterError("k_prime cannot exceed the number of nodes")
    u, sigma, v = _factorize_adjacency(graph, config)
    sqrt_sigma = np.sqrt(np.maximum(sigma, 0.0))
    d_inv = graph.out_degree_inverse()
    x1 = d_inv[:, None] * u * sqrt_sigma[None, :]
    y = v * sqrt_sigma[None, :]

    p = graph.transition_matrix()
    x = x1.copy()
    for _ in range(2, config.ell1 + 1):
        x = (1.0 - config.alpha) * (p @ x) + x1
    x *= config.alpha * (1.0 - config.alpha)
    return x, y


def theorem1_bound(sigma_next: float, alpha: float, ell1: int,
                   eps: float) -> float:
    """The entrywise error bound of Theorem 1.

    ``sigma_next`` is the ``(k'+1)``-th largest singular value of ``A``.
    """
    decay = 1.0 - alpha
    return ((1.0 + eps) * sigma_next * decay * (1.0 - decay ** ell1)
            + decay ** (ell1 + 1))
