"""Algorithm 1 of the paper: ApproxPPR.

Factorizes the truncated PPR matrix ``Pi' = sum_{i=1..ell1}
alpha (1-alpha)^i P^i`` into forward embeddings ``X`` and backward
embeddings ``Y`` (``X @ Y.T ~= Pi'``) without ever materializing an
``n x n`` matrix:

1. ``U, Sigma, V = BKSVD(A, k', eps)``            (randomized SVD of A)
2. ``X_1 = D^-1 U sqrt(Sigma)``, ``Y = V sqrt(Sigma)``
   so that ``X_1 @ Y.T ~= D^-1 A = P``
3. ``X_i = (1 - alpha) P X_{i-1} + X_1`` for ``i = 2..ell1``
4. ``X = alpha (1 - alpha) X_ell1``

Theorem 1 bounds the entrywise error by
``(1+eps) sigma_{k'+1} (1-alpha)(1-(1-alpha)^ell1) + (1-alpha)^(ell1+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import ParameterError
from ..graph import Graph
from ..linalg import BlockSparseOperator, bksvd, randomized_svd
from ..parallel import parallel_map, payload
from ..ppr.chunks import iter_chunks, resolve_chunk_size
from ..rng import ensure_rng

__all__ = ["ApproxPPRConfig", "PPRFactorState", "approx_ppr_embeddings",
           "approx_ppr_state", "theorem1_bound"]


@dataclass(frozen=True)
class ApproxPPRConfig:
    """Inputs of Algorithm 1 (names follow the paper).

    ``k_prime`` is the per-side dimensionality ``k' = k/2``; the paper's
    defaults are ``alpha=0.15, ell1=20, eps=0.2``.

    ``chunk_size`` / ``workers`` select the chunked engine: every
    matrix–block product (SVD sketching and the ``ell1`` power
    iterations) is evaluated over row chunks, optionally across worker
    processes. The chunked engine is bit-identical to the dense-path
    arithmetic for the sparse products and deterministic given ``seed``
    regardless of ``workers``; the default (``chunk_size=None,
    workers=1``) runs the original single-pass path unchanged.
    """

    k_prime: int
    alpha: float = 0.15
    ell1: int = 20
    eps: float = 0.2
    svd: str = "bksvd"           # "bksvd" | "rsvd" | "exact"
    seed: int | None = 0
    chunk_size: int | None = None
    workers: int = 1

    @property
    def chunked(self) -> bool:
        """Whether the chunked engine is selected."""
        return self.chunk_size is not None or self.workers != 1

    def validate(self) -> None:
        if self.k_prime < 1:
            raise ParameterError("k_prime must be >= 1")
        if not 0.0 < self.alpha < 1.0:
            raise ParameterError(
                f"alpha must be in the open interval (0, 1), "
                f"got {self.alpha!r}")
        if self.ell1 < 1:
            raise ParameterError("ell1 must be >= 1")
        if self.eps <= 0:
            raise ParameterError("eps must be positive")
        if self.svd not in ("bksvd", "rsvd", "exact"):
            raise ParameterError(f"unknown svd backend {self.svd!r}")
        if self.chunk_size is not None and (
                int(self.chunk_size) != self.chunk_size or self.chunk_size < 1):
            raise ParameterError(
                f"chunk_size must be a positive integer or None, "
                f"got {self.chunk_size!r}")
        if int(self.workers) != self.workers or self.workers < 1:
            raise ParameterError(
                f"workers must be a positive integer, got {self.workers!r}")
        if self.chunked and self.svd == "exact":
            raise ParameterError(
                "svd='exact' densifies the full adjacency matrix, which "
                "defeats the chunked engine; use svd='bksvd' or 'rsvd' "
                "with chunk_size/workers")


def _factorize_adjacency(graph: Graph, config: ApproxPPRConfig,
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    adjacency = graph.adjacency()
    if config.chunked:
        # Same arithmetic, evaluated one row block at a time (and in
        # parallel when workers > 1): bksvd/rsvd only form matrix-block
        # products, so the operator swap is invisible to them.
        adjacency = BlockSparseOperator(adjacency,
                                        chunk_size=config.chunk_size,
                                        workers=config.workers)
    rng = ensure_rng(config.seed)
    if config.svd == "bksvd":
        return bksvd(adjacency, config.k_prime, eps=config.eps, seed=rng)
    if config.svd == "rsvd":
        return randomized_svd(adjacency, config.k_prime, seed=rng)
    dense = adjacency.toarray()
    u, s, vt = np.linalg.svd(dense, full_matrices=False)
    return u[:, :config.k_prime], s[:config.k_prime], vt[:config.k_prime].T


def _power_chunk(bounds: tuple[int, int]) -> np.ndarray:
    p, x, x1, decay = payload()
    start, stop = bounds
    return decay * (p[start:stop] @ x) + x1[start:stop]


def _chunked_power_iterations(p, x1: np.ndarray,
                              config: ApproxPPRConfig) -> np.ndarray:
    """Lines 3 of Algorithm 1 over row chunks of ``P``.

    Each output row of ``(1 - alpha) P X + X_1`` depends on the full
    current ``X`` but is computed independently, so the row-chunked
    product is bit-identical to the one-shot product for any grid and
    worker count.
    """
    n = x1.shape[0]
    size = resolve_chunk_size(n, config.chunk_size)
    bounds = list(iter_chunks(n, size))
    decay = 1.0 - config.alpha
    x = x1.copy()
    for _ in range(2, config.ell1 + 1):
        blocks = parallel_map(_power_chunk, bounds, workers=config.workers,
                              payload=(p, x, x1, decay))
        x = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
    return x


@dataclass(frozen=True)
class PPRFactorState:
    """Internal sketches of Algorithm 1, retained for incremental repair.

    The public result ``(X, Y)`` of :func:`approx_ppr_embeddings` is a
    lossy view of this state: ``X = alpha (1 - alpha) x_iter`` and
    ``Y = y``. :class:`repro.streaming.IncrementalPPR` instead needs the
    un-scaled iterate and the basis that maps adjacency rows back into
    sketch space:

    ``x1``
        The first iterate ``X_1 = D^-1 U sqrt(Sigma)``; the additive
        term of every power iteration.
    ``x_iter``
        ``X_ell1`` before the final ``alpha (1 - alpha)`` scaling.
    ``y``
        The backward factor ``V sqrt(Sigma)`` (the serving database
        side; fixed between basis refreshes).
    ``v_scaled``
        ``V / sqrt(Sigma)`` (columns with ``sigma = 0`` zeroed). Since
        ``U sqrt(Sigma) = A V Sigma^-1/2``, a changed adjacency row
        maps to a changed ``x1`` row by ``delta_A[v] @ v_scaled`` —
        the identity that makes O(degree) local repair possible.
    """

    x1: np.ndarray
    x_iter: np.ndarray
    y: np.ndarray
    v_scaled: np.ndarray


def approx_ppr_state(graph: Graph, config: ApproxPPRConfig,
                     ) -> PPRFactorState:
    """Run Algorithm 1 keeping the internal sketches (see the dataclass)."""
    config.validate()
    if config.k_prime > graph.num_nodes:
        raise ParameterError("k_prime cannot exceed the number of nodes")
    with obs.trace("approx_ppr.svd", backend=config.svd,
                   k_prime=config.k_prime):
        u, sigma, v = _factorize_adjacency(graph, config)
    sqrt_sigma = np.sqrt(np.maximum(sigma, 0.0))
    d_inv = graph.out_degree_inverse()
    x1 = d_inv[:, None] * u * sqrt_sigma[None, :]
    y = v * sqrt_sigma[None, :]
    inv_sqrt = np.zeros_like(sqrt_sigma)
    np.divide(1.0, sqrt_sigma, out=inv_sqrt, where=sqrt_sigma > 0)
    v_scaled = v * inv_sqrt[None, :]

    p = graph.transition_matrix()
    with obs.trace("approx_ppr.propagation", ell1=config.ell1,
                   chunked=config.chunked):
        if config.chunked:
            x_iter = _chunked_power_iterations(p, x1, config)
        else:
            x_iter = x1.copy()
            for _ in range(2, config.ell1 + 1):
                x_iter = (1.0 - config.alpha) * (p @ x_iter) + x1
    return PPRFactorState(x1=x1, x_iter=x_iter, y=y, v_scaled=v_scaled)


def approx_ppr_embeddings(graph: Graph, config: ApproxPPRConfig,
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Run Algorithm 1; returns ``(X, Y)`` with ``X @ Y.T ~= Pi'``."""
    state = approx_ppr_state(graph, config)
    x = state.x_iter * (config.alpha * (1.0 - config.alpha))
    return x, state.y


def theorem1_bound(sigma_next: float, alpha: float, ell1: int,
                   eps: float) -> float:
    """The entrywise error bound of Theorem 1.

    ``sigma_next`` is the ``(k'+1)``-th largest singular value of ``A``.
    """
    decay = 1.0 - alpha
    return ((1.0 + eps) * sigma_next * decay * (1.0 - decay ** ell1)
            + decay ** (ell1 + 1))
