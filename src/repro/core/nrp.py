"""Algorithm 3: the complete NRP embedding method (the paper's headline).

``NRP.fit`` runs ApproxPPR (Algorithm 1) for the base factorization,
initializes ``w_fwd = d_out`` and ``w_bwd = 1`` (Line 4), alternates
``ell2`` epochs of backward/forward coordinate-descent sweeps
(Lines 5-7), and finally scales each node's embeddings by its learned
weights (Lines 8-9):

    X_v <- w_fwd[v] * X_v        Y_v <- w_bwd[v] * Y_v

so that ``X_u . Y_v ~= w_fwd[u] pi(u, v) w_bwd[v]`` (Eq. 4), the
degree-calibrated proximity that fixes vanilla PPR's locality problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..embedder import Embedder
from ..errors import ParameterError, ReproError
from ..graph import Graph
from ..rng import spawn_rngs
from .approx_ppr import (ApproxPPRConfig, PPRFactorState,
                         approx_ppr_embeddings, approx_ppr_state)
from .objective import reweighting_objective
from .reweighting import update_backward_weights, update_forward_weights

__all__ = ["NRPConfig", "NRP", "ApproxPPREmbedder"]


@dataclass(frozen=True)
class NRPConfig:
    """All hyperparameters of Algorithm 3 with the paper's defaults.

    ``dim`` is the total per-node budget ``k``; each side receives
    ``k' = k/2`` (Line 1 of Algorithm 3).

    ``chunk_size`` and ``workers`` select the chunked fit engine: the
    ApproxPPR stage runs over row-chunked sparse blocks and the
    reweighting sweeps use the chunk-precomputed fast path, with chunks
    optionally fanned out to ``workers`` processes. The default
    (``chunk_size=None, workers=1``) is the original single-pass path,
    bit-for-bit. The chunked engine is deterministic given ``seed``
    regardless of ``workers`` (chunk boundaries depend only on
    ``chunk_size``) and tracks the default path to ``<= 1e-8``.
    """

    dim: int = 128
    alpha: float = 0.15
    ell1: int = 20
    ell2: int = 10
    eps: float = 0.2
    lam: float = 10.0
    svd: str = "bksvd"
    update_mode: str = "sequential"   # "sequential" (faithful) | "jacobi"
    exact_b1: bool = False            # paper uses the Eq. (14) approximation
    seed: int | None = 0
    chunk_size: int | None = None
    workers: int = 1

    @property
    def chunked(self) -> bool:
        """Whether the chunked fit engine is selected."""
        return self.chunk_size is not None or self.workers != 1

    def validate(self) -> None:
        if self.dim < 2 or self.dim % 2:
            raise ParameterError("dim must be an even integer >= 2")
        if self.ell2 < 0:
            raise ParameterError("ell2 must be >= 0")
        if self.lam < 0:
            raise ParameterError("lambda must be nonnegative")
        if self.update_mode not in ("sequential", "jacobi"):
            raise ParameterError(f"unknown update_mode {self.update_mode!r}")
        # alpha, chunk_size and workers (shared with the ApproxPPR stage)
        # are validated once, here, with their clear messages
        ApproxPPRConfig(k_prime=self.dim // 2, alpha=self.alpha,
                        ell1=self.ell1, eps=self.eps, svd=self.svd,
                        chunk_size=self.chunk_size,
                        workers=self.workers).validate()


class NRP(Embedder):
    """Node-Reweighted PageRank embeddings (paper Algorithm 3).

    Attributes after :meth:`fit`:

    ``forward_``, ``backward_``
        The reweighted embeddings ``w_fwd[v] X_v`` and ``w_bwd[v] Y_v``.
    ``base_forward_``, ``base_backward_``
        The un-reweighted ApproxPPR embeddings (what ``ell2 = 0`` gives).
    ``w_fwd_``, ``w_bwd_``
        The learned node weights.
    ``objective_history_``
        Eq. (6) value before reweighting and after every epoch (only
        when ``track_objective=True``).
    """

    name = "NRP"
    directional = True

    def __init__(self, dim: int = 128, *, alpha: float = 0.15, ell1: int = 20,
                 ell2: int = 10, eps: float = 0.2, lam: float = 10.0,
                 svd: str = "bksvd", update_mode: str = "sequential",
                 exact_b1: bool = False, seed: int | None = 0,
                 chunk_size: int | None = None, workers: int = 1,
                 track_objective: bool = False,
                 keep_factor_state: bool = False) -> None:
        super().__init__(dim, seed=seed)
        self.config = NRPConfig(dim=dim, alpha=alpha, ell1=ell1, ell2=ell2,
                                eps=eps, lam=lam, svd=svd,
                                update_mode=update_mode, exact_b1=exact_b1,
                                seed=seed, chunk_size=chunk_size,
                                workers=workers)
        self.config.validate()
        self.track_objective = track_objective
        self.keep_factor_state = keep_factor_state
        self.factor_state_: PPRFactorState | None = None
        self.w_fwd_: np.ndarray | None = None
        self.w_bwd_: np.ndarray | None = None
        self.base_forward_: np.ndarray | None = None
        self.base_backward_: np.ndarray | None = None
        self.objective_history_: list[float] = []
        self.last_warm_refit_: dict | None = None

    def fit(self, graph: Graph) -> "NRP":
        cfg = self.config
        svd_rng, sweep_rng = spawn_rngs(cfg.seed, 2)
        approx_cfg = ApproxPPRConfig(
            k_prime=cfg.dim // 2, alpha=cfg.alpha, ell1=cfg.ell1,
            eps=cfg.eps, svd=cfg.svd, seed=svd_rng,
            chunk_size=cfg.chunk_size, workers=cfg.workers)
        # nrp.fit is the root span; approx_ppr.svd / approx_ppr.propagation
        # and nrp.reweighting nest inside it, giving per-phase timings
        with obs.trace("nrp.fit", n=graph.num_nodes, dim=cfg.dim):
            if self.keep_factor_state:
                # Streaming tier: retain the Algorithm-1 internals so
                # IncrementalPPR can repair them without a second SVD.
                state = approx_ppr_state(graph, approx_cfg)
                self.factor_state_ = state
                x = state.x_iter * (cfg.alpha * (1.0 - cfg.alpha))
                y = state.y
            else:
                x, y = approx_ppr_embeddings(graph, approx_cfg)
            self._fit_weights(graph, x, y, sweep_rng)
        return self

    def _fit_weights(self, graph: Graph, x: np.ndarray, y: np.ndarray,
                     sweep_rng) -> None:
        """Lines 4-9 of Algorithm 3 given the base factorization."""
        cfg = self.config
        n = graph.num_nodes
        d_out = graph.out_degrees.astype(np.float64)
        d_in = graph.in_degrees.astype(np.float64)
        if cfg.ell2 == 0:
            # Section 5.6: ell2 = 0 "disables our reweighting scheme and
            # only uses the conventional PPR for embedding" — unit weights.
            w_fwd = np.ones(n)
            w_bwd = np.ones(n)
        else:
            # Line 4: w_fwd = d_out, w_bwd = 1. Dangling nodes would start
            # at 0, below the feasible floor 1/n, so they are clamped.
            w_fwd = np.maximum(d_out, 1.0 / n)
            w_bwd = np.ones(n)

        self.objective_history_ = []
        if self.track_objective:
            self.objective_history_.append(reweighting_objective(
                x, y, w_fwd, w_bwd, d_out, d_in, cfg.lam))
        with obs.trace("nrp.reweighting", epochs=cfg.ell2):
            for _ in range(cfg.ell2):
                w_bwd = update_backward_weights(
                    x, y, w_fwd, w_bwd, d_out, d_in, cfg.lam,
                    mode=cfg.update_mode, exact_b1=cfg.exact_b1,
                    seed=sweep_rng, chunk_size=cfg.chunk_size,
                    workers=cfg.workers)
                w_fwd = update_forward_weights(
                    x, y, w_fwd, w_bwd, d_out, d_in, cfg.lam,
                    mode=cfg.update_mode, exact_b1=cfg.exact_b1,
                    seed=sweep_rng, chunk_size=cfg.chunk_size,
                    workers=cfg.workers)
                if self.track_objective:
                    self.objective_history_.append(reweighting_objective(
                        x, y, w_fwd, w_bwd, d_out, d_in, cfg.lam))

        self.base_forward_ = x
        self.base_backward_ = y
        self.w_fwd_ = w_fwd
        self.w_bwd_ = w_bwd
        self.forward_ = w_fwd[:, None] * x       # Lines 8-9
        self.backward_ = w_bwd[:, None] * y

    def warm_refit(self, graph: Graph, *, x: np.ndarray | None = None,
                   y: np.ndarray | None = None, epochs: int | None = None,
                   drift_threshold: float | None = None) -> "NRP":
        """Refresh a fitted model for a slightly-changed graph.

        Instead of restarting Algorithm 3 from the ``w_fwd = d_out,
        w_bwd = 1`` initialization, the reweighting sweeps warm-start
        from the *previous* learned weights (with their incremental
        ``rho`` aggregates rebuilt from those weights), running only
        ``epochs`` sweep pairs (default ``max(1, ell2 // 5)``). ``x`` /
        ``y`` supply refreshed base factor sketches — in the streaming
        tier, the output of :class:`repro.streaming.IncrementalPPR` —
        and default to the previous fit's base factors.

        ``drift_threshold`` guards against the warm start hiding a
        structurally different optimum: after the warm sweeps, the
        relative L1 weight drift ``|w_new - w_old|_1 / |w_old|_1``
        (both sides pooled) is compared against it, and a larger drift
        **escalates to a full** :meth:`fit` on ``graph`` (so the SVD
        basis is refreshed too). A node-count change always escalates.
        The decision is recorded in ``self.last_warm_refit_``
        (``escalated``, ``drift``, ``epochs``, ``reason``).
        """
        cfg = self.config
        if self.w_fwd_ is None or self.base_forward_ is None:
            raise ReproError(f"{self.name}: warm_refit requires a fitted "
                             f"model; call fit() first")
        if (x is None) != (y is None):
            raise ParameterError("pass both x and y or neither")
        if epochs is None:
            epochs = max(1, cfg.ell2 // 5) if cfg.ell2 else 0
        if epochs < 0:
            raise ParameterError("epochs must be >= 0")
        if drift_threshold is not None and drift_threshold <= 0:
            raise ParameterError("drift_threshold must be positive or None")
        if x is None:
            x, y = self.base_forward_, self.base_backward_
        n = graph.num_nodes
        if len(self.w_fwd_) != n or x.shape[0] != n:
            self.fit(graph)
            # drift is None, not inf: these records travel as JSON lines
            # and Infinity is not valid JSON
            self.last_warm_refit_ = {"escalated": True, "drift": None,
                                     "epochs": 0,
                                     "reason": "node count changed"}
            return self

        d_out = graph.out_degrees.astype(np.float64)
        d_in = graph.in_degrees.astype(np.float64)
        floor = 1.0 / n
        w_fwd = np.maximum(self.w_fwd_.astype(np.float64, copy=True), floor)
        w_bwd = np.maximum(self.w_bwd_.astype(np.float64, copy=True), floor)
        prev_norm = np.abs(w_fwd).sum() + np.abs(w_bwd).sum()
        prev_fwd, prev_bwd = w_fwd.copy(), w_bwd.copy()

        sweep_rng = spawn_rngs(cfg.seed, 2)[1]
        with obs.trace("nrp.warm_refit", epochs=epochs):
            for _ in range(epochs):
                w_bwd = update_backward_weights(
                    x, y, w_fwd, w_bwd, d_out, d_in, cfg.lam,
                    mode=cfg.update_mode, exact_b1=cfg.exact_b1,
                    seed=sweep_rng, chunk_size=cfg.chunk_size,
                    workers=cfg.workers)
                w_fwd = update_forward_weights(
                    x, y, w_fwd, w_bwd, d_out, d_in, cfg.lam,
                    mode=cfg.update_mode, exact_b1=cfg.exact_b1,
                    seed=sweep_rng, chunk_size=cfg.chunk_size,
                    workers=cfg.workers)
        drift = float((np.abs(w_fwd - prev_fwd).sum()
                       + np.abs(w_bwd - prev_bwd).sum())
                      / max(prev_norm, 1e-300))
        if drift_threshold is not None and drift > drift_threshold:
            self.fit(graph)
            self.last_warm_refit_ = {
                "escalated": True, "drift": drift, "epochs": epochs,
                "reason": f"drift {drift:.4f} > threshold "
                          f"{drift_threshold:.4f}"}
            return self

        self.base_forward_ = x
        self.base_backward_ = y
        self.w_fwd_ = w_fwd
        self.w_bwd_ = w_bwd
        self.forward_ = w_fwd[:, None] * x
        self.backward_ = w_bwd[:, None] * y
        self.last_warm_refit_ = {"escalated": False, "drift": drift,
                                 "epochs": epochs, "reason": None}
        return self


class ApproxPPREmbedder(Embedder):
    """The ApproxPPR baseline of Section 3 as a standalone method.

    Identical to ``NRP(ell2=0)`` up to the degree initialization of the
    forward weights: ApproxPPR uses the raw factorization ``X, Y``.
    """

    name = "ApproxPPR"
    directional = True

    def __init__(self, dim: int = 128, *, alpha: float = 0.15, ell1: int = 20,
                 eps: float = 0.2, svd: str = "bksvd",
                 seed: int | None = 0, chunk_size: int | None = None,
                 workers: int = 1) -> None:
        super().__init__(dim, seed=seed)
        self.config = ApproxPPRConfig(k_prime=dim // 2, alpha=alpha,
                                      ell1=ell1, eps=eps, svd=svd, seed=seed,
                                      chunk_size=chunk_size, workers=workers)
        self.config.validate()

    def fit(self, graph: Graph) -> "ApproxPPREmbedder":
        x, y = approx_ppr_embeddings(graph, self.config)
        self.forward_ = x
        self.backward_ = y
        return self
