"""The paper's contribution: ApproxPPR (Alg. 1) and NRP (Alg. 2-4)."""

from .approx_ppr import (ApproxPPRConfig, PPRFactorState,
                         approx_ppr_embeddings, approx_ppr_state,
                         theorem1_bound)
from .attributed import AttributedNRP, augment_with_attributes
from .nrp import NRP, ApproxPPREmbedder, NRPConfig
from .objective import reweighting_objective, strength_vectors
from .reweighting import (BackwardAggregates, ForwardAggregates,
                          backward_aggregates, forward_aggregates,
                          naive_backward_terms, naive_forward_terms,
                          update_backward_weights, update_forward_weights)

__all__ = [
    "ApproxPPRConfig", "PPRFactorState", "approx_ppr_embeddings",
    "approx_ppr_state", "theorem1_bound",
    "NRP", "NRPConfig", "ApproxPPREmbedder",
    "AttributedNRP", "augment_with_attributes",
    "reweighting_objective", "strength_vectors",
    "BackwardAggregates", "ForwardAggregates",
    "backward_aggregates", "forward_aggregates",
    "update_backward_weights", "update_forward_weights",
    "naive_backward_terms", "naive_forward_terms",
]
