"""Attributed-graph extension of NRP (the paper's stated future work).

Section 6 of the paper: "we plan to study how to extend NRP to handle
attributed graphs." This module implements the natural first construction
in the spirit of the paper's machinery: *bipartite augmentation*. Each
attribute becomes an auxiliary node; every node with that attribute gets
a bidirectional arc to it. Random walks (hence PPR, hence NRP's
reweighted factorization) then flow through shared attributes as well as
topology, so two nodes with overlapping attributes gain proximity even
without short connecting paths.

The result is an :class:`AttributedNRP` embedder with the same interface
as :class:`repro.NRP`; attribute-node embeddings are computed but only
the original-node block is exposed.
"""

from __future__ import annotations

import numpy as np

from ..embedder import Embedder
from ..errors import DimensionError, ParameterError
from ..graph import Graph, from_edges
from .nrp import NRP

__all__ = ["augment_with_attributes", "AttributedNRP"]


def augment_with_attributes(graph: Graph, attributes: np.ndarray,
                            ) -> Graph:
    """Append one auxiliary node per attribute column.

    ``attributes`` is an ``(n, d)`` binary membership matrix; nonzero
    entry ``(v, j)`` adds the arcs ``v <-> n + j``. The result preserves
    directedness of the original graph (attribute arcs always go both
    ways, as attribute affiliation carries no direction).
    """
    attributes = np.asarray(attributes)
    n = graph.num_nodes
    if attributes.ndim != 2 or attributes.shape[0] != n:
        raise DimensionError("attributes must be (num_nodes, num_attrs)")
    num_attrs = attributes.shape[1]
    owners, attrs = np.nonzero(attributes)
    attr_nodes = n + attrs
    src, dst = graph.arcs()
    if graph.directed:
        aug_src = np.concatenate([src, owners, attr_nodes])
        aug_dst = np.concatenate([dst, attr_nodes, owners])
    else:
        keep = src <= dst               # feed undirected edges once
        aug_src = np.concatenate([src[keep], owners])
        aug_dst = np.concatenate([dst[keep], attr_nodes])
    return from_edges(n + num_attrs, aug_src, aug_dst,
                      directed=graph.directed)


class AttributedNRP(Embedder):
    """NRP over the attribute-augmented graph.

    Parameters mirror :class:`repro.NRP`; ``attribute_weight`` controls
    how many copies of each attribute arc are *conceptually* added —
    realized by repeating the augmentation, it biases the walk toward
    attribute hops (weight 1 = neutral).
    """

    name = "NRP-attr"
    directional = True

    def __init__(self, dim: int = 128, *, attributes: np.ndarray,
                 seed: int | None = 0, **nrp_kwargs) -> None:
        super().__init__(dim, seed=seed)
        self.attributes = np.asarray(attributes)
        if self.attributes.ndim != 2:
            raise ParameterError("attributes must be a 2-D matrix")
        self._nrp = NRP(dim, seed=seed, **nrp_kwargs)
        self.attribute_forward_: np.ndarray | None = None
        self.attribute_backward_: np.ndarray | None = None

    def fit(self, graph: Graph) -> "AttributedNRP":
        if self.attributes.shape[0] != graph.num_nodes:
            raise DimensionError("attribute rows must match graph nodes")
        augmented = augment_with_attributes(graph, self.attributes)
        self._nrp.fit(augmented)
        n = graph.num_nodes
        self.forward_ = self._nrp.forward_[:n]
        self.backward_ = self._nrp.backward_[:n]
        self.attribute_forward_ = self._nrp.forward_[n:]
        self.attribute_backward_ = self._nrp.backward_[n:]
        return self
