"""FORA: forward push + Monte-Carlo refinement for single-source PPR
(Wang et al., KDD 2017 — reference [54] of the NRP paper).

The paper's Section 3.1 surveys this line of work to argue that even
state-of-the-art single-source solvers are too slow to build the full
PPR matrix. FORA's idea: run forward push until residues are small,
then clean up the *remaining* residue with random walks — each walk
started from a node ``v`` with residue ``r(v)`` contributes an unbiased
correction because of the push invariant

    pi(s, t) = p(t) + sum_v r(v) pi(v, t).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng
from .forward_push import forward_push
from .monte_carlo import terminate_walks

__all__ = ["fora"]


def fora(graph: Graph, source: int, alpha: float = 0.15, *,
         r_max: float = 1e-3, walks_per_unit: float = 64.0,
         seed=None, kernel: str | None = None) -> np.ndarray:
    """FORA estimate of ``pi(source, .)``.

    Parameters
    ----------
    r_max:
        Forward-push residue threshold (per unit of out-degree); larger
        values shift work from push to sampling.
    walks_per_unit:
        Number of walks launched per unit of total leftover residue;
        the variance of the estimate scales as ``1 / walks_per_unit``.
    kernel:
        Push backend forwarded to :mod:`repro.ppr.kernels`.
    """
    if walks_per_unit <= 0:
        raise ParameterError("walks_per_unit must be positive")
    rng = ensure_rng(seed)
    estimate, residue = forward_push(graph, source, alpha, r_max=r_max,
                                     kernel=kernel)
    total_residue = float(residue.sum())
    if total_residue <= 0:
        return estimate
    num_walks = max(1, int(np.ceil(walks_per_unit * total_residue
                                   * graph.num_nodes * r_max + 1)))
    num_walks = max(num_walks, int(walks_per_unit))
    # sample walk start nodes proportional to their residue
    probs = residue / total_residue
    starts = rng.choice(graph.num_nodes, size=num_walks, p=probs)
    stops = terminate_walks(graph, starts, alpha, seed=rng)
    correction = np.bincount(stops, minlength=graph.num_nodes).astype(float)
    correction *= total_residue / num_walks
    return estimate + correction
