"""PPR by power iteration (the exact reference the paper's Table 1 uses).

The paper defines PPR via walk termination (Section 3.1): a walk from
``u`` stops at the current node with probability ``alpha`` and otherwise
moves to a uniform out-neighbor, giving

    Pi = sum_{i>=0} alpha (1 - alpha)^i P^i            (Eq. 1)

equivalently the fixed point ``pi_u = alpha e_u + (1 - alpha) pi_u P``.
Dangling nodes (no out-edges) terminate the walk, making ``P``
substochastic; rows still sum to at most 1.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from ..graph import Graph

__all__ = ["ppr_row", "ppr_rows", "ppr_matrix_dense", "truncated_ppr_matrix"]


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")


def ppr_row(graph: Graph, source: int, alpha: float = 0.15, *,
            tol: float = 1e-12, max_iters: int = 10_000) -> np.ndarray:
    """Exact single-source PPR vector ``pi(source, .)`` (length n)."""
    return ppr_rows(graph, np.asarray([source]), alpha,
                    tol=tol, max_iters=max_iters)[0]


def ppr_rows(graph: Graph, sources: np.ndarray, alpha: float = 0.15, *,
             tol: float = 1e-12, max_iters: int = 10_000) -> np.ndarray:
    """PPR rows for several sources at once, shape ``(len(sources), n)``.

    Iterates the series of Eq. (1) term by term; the residual mass after
    ``t`` terms is ``(1 - alpha)^(t+1)`` so convergence to ``tol`` needs
    ``log(tol) / log(1 - alpha)`` iterations.
    """
    _check_alpha(alpha)
    sources = np.asarray(sources, dtype=np.int64)
    n = graph.num_nodes
    p = graph.transition_matrix()
    dangling = np.flatnonzero(graph.out_degrees == 0)
    walk = np.zeros((len(sources), n))
    walk[np.arange(len(sources)), sources] = 1.0
    result = np.zeros_like(walk)
    for _ in range(max_iters):
        result += alpha * walk
        if len(dangling):
            # a walk at a dangling node terminates there with certainty
            result[:, dangling] += (1.0 - alpha) * walk[:, dangling]
        walk = (1.0 - alpha) * (walk @ p)   # P has zero rows at dangling
        if walk.sum() <= tol * len(sources):
            break
    return result


def ppr_matrix_dense(graph: Graph, alpha: float = 0.15, *,
                     tol: float = 1e-12, max_iters: int = 10_000) -> np.ndarray:
    """The full dense PPR matrix ``Pi`` (small graphs only: O(n^2) memory)."""
    return ppr_rows(graph, np.arange(graph.num_nodes), alpha,
                    tol=tol, max_iters=max_iters)


def truncated_ppr_matrix(graph: Graph, alpha: float = 0.15,
                         num_terms: int = 20) -> np.ndarray:
    """``Pi' = sum_{i=1..ell1} alpha (1-alpha)^i P^i`` of Eq. (3), densely.

    This is the exact target that ApproxPPR (Algorithm 1) factorizes; the
    tests compare ``X @ Y.T`` against it within the Theorem 1 bound.
    """
    _check_alpha(alpha)
    if num_terms < 1:
        raise ParameterError("num_terms must be >= 1")
    p = graph.transition_matrix()
    n = graph.num_nodes
    term = np.eye(n)
    acc = np.zeros((n, n))
    for i in range(1, num_terms + 1):
        term = term @ p  # P^i applied incrementally
        acc += alpha * (1.0 - alpha) ** i * term
    return acc
