"""Monte-Carlo PPR estimation by terminating random walks.

Directly simulates the paper's definition: a walk from the source stops
with probability ``alpha`` per step; the empirical distribution of stop
nodes estimates ``pi(source, .)``. Used to cross-validate the analytic
solvers and as the sampling engine of the APP/VERSE baselines.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng

__all__ = ["monte_carlo_ppr", "terminate_walks"]


def terminate_walks(graph: Graph, starts: np.ndarray, alpha: float = 0.15, *,
                    max_steps: int = 512, seed=None) -> np.ndarray:
    """Run one alpha-terminating walk from every entry of ``starts``.

    Returns the stop node of each walk. Vectorized: all walks advance in
    lock-step, finished walks drop out of the active set. Walks that hit
    a dangling node, or survive ``max_steps`` steps (probability
    ``(1-alpha)^max_steps``, negligible), stop where they are.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    rng = ensure_rng(seed)
    current = np.array(starts, dtype=np.int64, copy=True)
    active = np.arange(len(current))
    degrees = graph.out_degrees
    for _ in range(max_steps):
        if len(active) == 0:
            break
        nodes = current[active]
        stop = rng.random(len(active)) < alpha
        stop |= degrees[nodes] == 0
        active = active[~stop]
        if len(active) == 0:
            break
        nodes = current[active]
        offsets = (rng.random(len(active)) * degrees[nodes]).astype(np.int64)
        current[active] = graph.indices[graph.indptr[nodes] + offsets]
    return current


def monte_carlo_ppr(graph: Graph, source: int, alpha: float = 0.15, *,
                    num_walks: int = 10_000, seed=None) -> np.ndarray:
    """Estimate ``pi(source, .)`` from ``num_walks`` terminating walks."""
    if num_walks < 1:
        raise ParameterError("num_walks must be >= 1")
    stops = terminate_walks(graph, np.full(num_walks, source, dtype=np.int64),
                            alpha, seed=seed)
    return np.bincount(stops, minlength=graph.num_nodes) / num_walks
