"""Monte-Carlo PPR estimation by terminating random walks.

Directly simulates the paper's definition: a walk from the source stops
with probability ``alpha`` per step; the empirical distribution of stop
nodes estimates ``pi(source, .)``. Used to cross-validate the analytic
solvers and as the sampling engine of the APP/VERSE baselines.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng

__all__ = ["monte_carlo_ppr", "terminate_walks"]


#: Target element count of one pre-drawn randomness block; bounds the
#: scratch memory at ~16 MB of float64 while amortizing the rng call
#: over as many steps as that allows.
_BLOCK_TARGET = 2_000_000


def _steps_per_block(n_active: int) -> int:
    """Steps covered by one randomness block (2 draws/step/walk)."""
    return max(1, min(64, _BLOCK_TARGET // max(1, 2 * n_active)))


def terminate_walks(graph: Graph, starts: np.ndarray, alpha: float = 0.15, *,
                    max_steps: int = 512, seed=None) -> np.ndarray:
    """Run one alpha-terminating walk from every entry of ``starts``.

    Returns the stop node of each walk. Vectorized: all walks advance in
    lock-step, finished walks drop out of the active set. Walks that hit
    a dangling node, or survive ``max_steps`` steps (probability
    ``(1-alpha)^max_steps``, negligible), stop where they are.

    All per-step randomness is drawn in chunked
    ``rng.random((steps, 2, n_active))`` blocks — one generator call per
    chunk instead of two per step. Step ``s`` of a chunk reads its stop
    draws from ``block[s, 0]`` and its neighbor draws from
    ``block[s, 1]``; shrinking active sets consume a prefix of each row.
    The draw schedule is part of the seeded contract: same seed, same
    stops, bit for bit (pinned by the seed-stability regression test).
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    rng = ensure_rng(seed)
    current = np.array(starts, dtype=np.int64, copy=True)
    active = np.arange(len(current))
    degrees = graph.out_degrees
    steps_done = 0
    while steps_done < max_steps and len(active):
        chunk = min(max_steps - steps_done, _steps_per_block(len(active)))
        block = rng.random((chunk, 2, len(active)))
        for s in range(chunk):
            nodes = current[active]
            stop = block[s, 0, :len(active)] < alpha
            stop |= degrees[nodes] == 0
            active = active[~stop]
            if len(active) == 0:
                break
            nodes = current[active]
            offsets = (block[s, 1, :len(active)]
                       * degrees[nodes]).astype(np.int64)
            current[active] = graph.indices[graph.indptr[nodes] + offsets]
        steps_done += chunk
    return current


def monte_carlo_ppr(graph: Graph, source: int, alpha: float = 0.15, *,
                    num_walks: int = 10_000, seed=None) -> np.ndarray:
    """Estimate ``pi(source, .)`` from ``num_walks`` terminating walks."""
    if num_walks < 1:
        raise ParameterError("num_walks must be >= 1")
    stops = terminate_walks(graph, np.full(num_walks, source, dtype=np.int64),
                            alpha, seed=seed)
    return np.bincount(stops, minlength=graph.num_nodes) / num_walks
