"""Personalized PageRank substrate: exact, push-based, Monte-Carlo,
FORA, and top-k solvers."""

from .backward_push import backward_push
from .chunks import (DEFAULT_CHUNK_SIZE, iter_chunks, num_chunks,
                     resolve_chunk_size)
from .fora import fora
from .forward_push import forward_push
from .kernels import (HAS_NUMBA, KERNELS, available_kernels,
                      backward_push_batch, default_kernel,
                      forward_push_batch, resolve_kernel, spread_frontier)
from .monte_carlo import monte_carlo_ppr, terminate_walks
from .power_iteration import (ppr_matrix_dense, ppr_row, ppr_rows,
                              truncated_ppr_matrix)
from .topk import top_k_ppr, top_k_ppr_exact

__all__ = [
    "ppr_row", "ppr_rows", "ppr_matrix_dense", "truncated_ppr_matrix",
    "forward_push", "backward_push", "monte_carlo_ppr", "terminate_walks",
    "fora", "top_k_ppr", "top_k_ppr_exact",
    "forward_push_batch", "backward_push_batch", "spread_frontier",
    "KERNELS", "HAS_NUMBA", "available_kernels", "default_kernel",
    "resolve_kernel",
    "DEFAULT_CHUNK_SIZE", "resolve_chunk_size", "iter_chunks", "num_chunks",
]
