"""Frontier-synchronous batched push kernels for local PPR.

Every local-PPR path in the package (forward push, backward push, FORA,
top-k, STRAP's per-target push, the streaming residue repair) bottoms
out in the same two primitives: *push the whole active frontier* and
*scatter shares to neighbors*. The seed implementations ran them one
node at a time from a Python ``deque`` — correct, but orders of
magnitude below what the hardware allows. This module provides the
primitives as kernels that process the entire frontier per iteration
with vectorized CSR gathers/scatters, plus multi-source batched entry
points that amortize degree lookups and frontier bookkeeping across
many sources at once (the standard route to large speedups over scalar
push; see the PPR survey of Yang et al. 2024 and Lin's distributed
fully-personalized PPR, PVLDB 2019).

Three interchangeable backends, selected per call (``kernel=``), per
process (``REPRO_KERNEL=scalar|numpy|numba``), or automatically:

``scalar``
    The seed one-node-at-a-time ``deque`` loop, kept as the reference
    implementation and benchmark baseline (with the multigraph
    duplicate-edge accumulation fix applied — see below).
``numpy``
    Frontier-synchronous: each iteration pushes *every* node above its
    threshold at once. Three regimes picked per iteration by frontier
    size (see the backend section below): vectorized CSR gathers with
    ``np.add.at`` scatters for narrow frontiers, one sparse product for
    middling ones, and dense memory-streaming sweeps for wide ones.
    Pure NumPy/SciPy; the default when numba is absent.
``numba``
    The same frontier-synchronous sweep as an ``@njit``-compiled loop
    (:func:`_forward_push_loop` / :func:`_backward_push_loop`, plain
    nopython-compatible Python, also unit-tested uncompiled). Requires
    the optional ``numba`` dependency (``pip install repro-nrp[fast]``);
    auto-selected when importable.

All backends preserve the seed's termination invariants exactly:

* forward push uses the degree-scaled threshold — node ``v`` is pushed
  while ``r(v) > r_max * max(d_out(v), 1)``;
* a dangling node keeps its full residue as termination mass
  (``estimate[v] += r(v)``, not just ``alpha * r(v)``);
* backward push seeds a dangling *target* with residue ``1 / alpha``
  (termination-PPR consistency, see ``backward_push.py``);
* ``max_pushes`` counts individual node pushes per source, and budget
  exhaustion leaves the un-pushed mass in the residue, so the push
  invariant ``pi(s, .) = p(.) + sum_v r(v) pi(v, .)`` holds at any
  stopping point under every backend.

Push *order* differs between backends (deque order vs frontier sweeps),
so results are not bitwise identical across kernels — they agree within
the documented additive ``r_max`` bounds, which is what the property
tests in ``tests/ppr/test_kernels.py`` pin.

Multigraph correctness: the seed loops scattered shares with
``residue[neighbors] += share``, which silently drops repeated indices
on multigraph CSR rows (parallel edges). Every backend here accumulates
duplicates (``np.add.at`` / ``bincount`` / explicit loops), so parallel
arcs each deliver their share, consistent with
:meth:`repro.graph.Graph.transition_matrix`.
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..errors import ParameterError
from ..graph import Graph

__all__ = [
    "KERNELS", "HAS_NUMBA", "available_kernels", "default_kernel",
    "resolve_kernel", "forward_push_batch", "backward_push_batch",
    "spread_frontier",
]

#: Recognized kernel names, in "slowest first" order.
KERNELS = ("scalar", "numpy", "numba")

#: Environment variable consulted when no ``kernel=`` is passed.
ENV_VAR = "REPRO_KERNEL"

#: Effectively-unbounded push budget (the seed default).
_DEFAULT_BUDGET = 10_000_000

try:                                   # auto-detect the optional fast path
    import numba as _numba             # noqa: F401
    HAS_NUMBA = True
except ImportError:                    # pure-NumPy fallback keeps it optional
    _numba = None
    HAS_NUMBA = False


# ----------------------------------------------------------------------
# kernel selection
# ----------------------------------------------------------------------

def available_kernels() -> tuple[str, ...]:
    """The kernel names usable in this process."""
    if HAS_NUMBA:
        return KERNELS
    return tuple(k for k in KERNELS if k != "numba")


def resolve_kernel(kernel: str | None) -> str:
    """Resolve a ``kernel=`` argument to a concrete backend name.

    ``None`` defers to :func:`default_kernel` (the ``REPRO_KERNEL``
    environment variable, then auto-detection); ``"auto"`` picks numba
    when installed and numpy otherwise.
    """
    if kernel is None:
        return default_kernel()
    name = str(kernel).strip().lower()
    if name == "auto":
        return "numba" if HAS_NUMBA else "numpy"
    if name not in KERNELS:
        raise ParameterError(
            f"unknown push kernel {kernel!r}; expected one of "
            f"{KERNELS + ('auto',)}")
    if name == "numba" and not HAS_NUMBA:
        raise ParameterError(
            "kernel 'numba' requested but numba is not importable; "
            "install the optional extra (pip install repro-nrp[fast]) "
            "or select kernel='numpy'")
    return name


def default_kernel() -> str:
    """Process-wide default: ``REPRO_KERNEL`` if set, else auto."""
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return resolve_kernel(env)
    return "numba" if HAS_NUMBA else "numpy"


# ----------------------------------------------------------------------
# shared validation / CSR gather plumbing
# ----------------------------------------------------------------------

def _validate_batch(graph: Graph, nodes, alpha: float, r_max: float,
                    max_pushes: int | None, what: str) -> np.ndarray:
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    if r_max <= 0:
        raise ParameterError("r_max must be positive")
    if max_pushes is not None and max_pushes < 0:
        raise ParameterError("max_pushes must be nonnegative")
    arr = np.asarray(nodes, dtype=np.int64).ravel()
    if len(arr) and (arr.min() < 0 or arr.max() >= graph.num_nodes):
        raise ParameterError(
            f"{what} out of range [0, {graph.num_nodes})")
    return arr


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=out[1:])
    return out


def _gather_rows(indptr: np.ndarray, indices: np.ndarray,
                 nodes: np.ndarray, counts: np.ndarray | None = None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``nodes``.

    Returns ``(targets, counts)``: the column indices of all rows back
    to back, and each row's length (duplicates preserved, so multigraph
    rows keep one entry per parallel arc).
    """
    starts = indptr[nodes]
    if counts is None:
        counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    shift = np.repeat(starts - _exclusive_cumsum(counts), counts)
    return indices[np.arange(total, dtype=np.int64) + shift], counts


def _scatter_candidates(flat: np.ndarray, keys: np.ndarray,
                        vals: np.ndarray) -> np.ndarray:
    """Accumulate ``vals`` into ``flat[keys]`` (duplicates summed) and
    return the touched keys, deduplicated and sorted."""
    np.add.at(flat, keys, vals)
    keys = np.sort(keys)
    if len(keys) > 1:
        keys = keys[np.r_[True, keys[1:] != keys[:-1]]]
    return keys


def _budget_truncate(slots, pushes, budget):
    """Keep, per slot, only as many frontier entries as budget remains.

    ``slots`` must be sorted ascending (frontier keys are slot-major).
    Returns a boolean keep-mask; dropped entries belong to slots whose
    budget the kept prefix exhausts, so they simply stay in the residue
    — exactly how the scalar loop stops mid-queue.
    """
    starts = np.flatnonzero(np.r_[True, slots[1:] != slots[:-1]])
    group_len = np.diff(np.r_[starts, len(slots)])
    pos = np.arange(len(slots), dtype=np.int64) - np.repeat(starts, group_len)
    return pos < (budget - pushes)[slots]


# ----------------------------------------------------------------------
# scalar reference backend (the seed loop, multigraph-safe)
# ----------------------------------------------------------------------

def _forward_push_scalar(graph: Graph, source: int, alpha: float,
                         r_max: float, budget: int,
                         ) -> tuple[np.ndarray, np.ndarray]:
    n = graph.num_nodes
    degrees = graph.out_degrees
    estimate = np.zeros(n)
    residue = np.zeros(n)
    residue[source] = 1.0
    queue: deque[int] = deque([int(source)])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[source] = True
    pushes = 0
    while queue and pushes < budget:
        v = queue.popleft()
        in_queue[v] = False
        r_v = residue[v]
        deg = degrees[v]
        if r_v <= r_max * max(deg, 1):
            continue
        pushes += 1
        residue[v] = 0.0
        estimate[v] += alpha * r_v
        if deg == 0:
            # dangling: the walk terminates here with the full residue
            estimate[v] += (1.0 - alpha) * r_v
            continue
        share = (1.0 - alpha) * r_v / deg
        neighbors = graph.out_neighbors(v)
        if len(neighbors) > 1 and np.any(neighbors[1:] == neighbors[:-1]):
            np.add.at(residue, neighbors, share)   # multigraph row
        else:
            residue[neighbors] += share
        r_nb = residue[neighbors]
        for u in neighbors[r_nb > r_max * np.maximum(degrees[neighbors], 1)]:
            if not in_queue[u]:
                queue.append(int(u))
                in_queue[u] = True
    return estimate, residue


def _backward_push_scalar(graph: Graph, target: int, alpha: float,
                          r_max: float, budget: int,
                          ) -> tuple[np.ndarray, np.ndarray]:
    n = graph.num_nodes
    transpose = graph.transpose()
    out_deg = graph.out_degrees
    estimate = np.zeros(n)
    residue = np.zeros(n)
    residue[target] = 1.0 if out_deg[target] > 0 else 1.0 / alpha
    queue: deque[int] = deque([int(target)])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[target] = True
    pushes = 0
    while queue and pushes < budget:
        v = queue.popleft()
        in_queue[v] = False
        r_v = residue[v]
        if r_v <= r_max:
            continue
        pushes += 1
        residue[v] = 0.0
        estimate[v] += alpha * r_v
        in_neighbors = transpose.out_neighbors(v)
        if len(in_neighbors) == 0:
            continue
        vals = (1.0 - alpha) * r_v / out_deg[in_neighbors]
        if len(in_neighbors) > 1 and np.any(
                in_neighbors[1:] == in_neighbors[:-1]):
            np.add.at(residue, in_neighbors, vals)   # multigraph row
        else:
            residue[in_neighbors] += vals
        r_nb = residue[in_neighbors]
        for u in in_neighbors[r_nb > r_max]:
            if not in_queue[u]:
                queue.append(int(u))
                in_queue[u] = True
    return estimate, residue


# ----------------------------------------------------------------------
# numpy frontier-synchronous backend
# ----------------------------------------------------------------------
#
# Each iteration pushes the entire above-threshold frontier at once.
# Three regimes, switched per iteration by frontier size (the
# direction-optimizing pattern of frontier-batched push):
#
# * narrow — residues live in flat slot-major buffers; the frontier's
#   CSR rows are gathered into one index array and shares scattered
#   with ``np.add.at``; candidate bookkeeping by sort-dedupe. Cost
#   proportional to the frontier's arcs only, so a local push
#   (FORA-sized ``r_max`` on a huge graph) never touches ``O(b n)``.
# * middle — same flat buffers, but the frontier is assembled into a
#   sparse ``(b, n)`` matrix and one sparse-sparse product ``F @ M``
#   performs the gather, the scatter, the duplicate merge, *and* hands
#   back the touched (slot, node) pairs as the product's CSR structure.
#   Still arc-proportional, with scipy's C kernel doing the work.
# * wide — residues move to a dense node-major ``(n, b)`` block; one
#   iteration is a handful of elementwise passes plus one blocked CSR
#   mat-vec (``M^T @ R`` through the csc view of the same operator)
#   over all ``b`` slots at once. Every pass streams memory
#   sequentially — no random scatters into a 100-MB buffer — which is
#   what makes deep pushes (small ``r_max``) run at memory bandwidth.
#
# A per-source ``max_pushes`` budget disables the wide regime (a dense
# sweep cannot stop mid-frontier per slot); budgets are a correctness
# knob, not a throughput path.

#: Frontier-arc count (relative to n) above which the spgemm (middle)
#: regime replaces np.add.at scatters.
_SPGEMM_FRACTION = 0.02

#: Frontier (slot, node) pair count (relative to b * n) at which the
#: dense wide regime is entered, and the exit threshold's divisor
#: (entering needs a denser frontier than staying: cheap hysteresis
#: against flapping between representations).
_WIDE_ENTER_DIVISOR = 6
_WIDE_EXIT_DIVISOR = 16


def _push_numpy(n: int, b: int, sources: np.ndarray, seeds_vals: np.ndarray,
                thresh, alpha: float, budget: int | None,
                row_indptr: np.ndarray, row_indices: np.ndarray,
                arc_weights, make_mat, degrees: np.ndarray | None,
                direction: str = "forward",
                ) -> tuple[np.ndarray, np.ndarray]:
    """Shared three-regime frontier loop for both push directions.

    ``row_indptr``/``row_indices`` describe the rows shares spread
    along in the narrow regime (out-CSR forward, in-CSR backward);
    ``arc_weights`` is the per-arc multiplier of those rows (``1/d_out``
    of the *receiving* node, backward only — forward folds ``1/deg`` of
    the *pushed* node into the share, signalled by ``degrees``).
    ``make_mat`` lazily builds the shared CSR spread operator ``M``
    (``P`` forward, ``P^T`` backward): the middle regime computes
    ``F @ M``, the wide one ``M^T @ R`` via the csc view. ``thresh`` is
    a per-node array (forward's degree scaling) or a plain float.
    ``degrees`` also enables forward's dangling termination mass.
    """
    size = b * n
    estimate = np.zeros(size)
    residue = np.zeros(size)
    keys = np.arange(b, dtype=np.int64) * n + sources
    residue[keys] = seeds_vals
    per_node = isinstance(thresh, np.ndarray)
    may_dangle = degrees is not None and bool((degrees == 0).any())
    if degrees is not None:
        # estimate multiplier per pushed node: alpha everywhere, the
        # full residue (termination mass) at dangling nodes
        est_scale = np.full(n, alpha)
        if may_dangle:
            est_scale[degrees == 0] = 1.0
    pushes = np.zeros(b, dtype=np.int64) if budget is not None else None
    spgemm_at = max(32, int(_SPGEMM_FRACTION * n))
    wide_enter = max(64, size // _WIDE_ENTER_DIVISOR)
    wide_exit = max(64, size // _WIDE_EXIT_DIVISOR)
    decay = 1.0 - alpha
    mat = None
    dense = False
    # regime bookkeeping: plain int increments every iteration (cheap),
    # flushed to the metrics registry once at exit when obs is enabled
    it_narrow = it_middle = it_wide = 0
    frontier_peak = 0
    r2 = e2 = None           # (n, b) node-major views of the wide regime
    while True:
        if not dense:
            # ------------- flat regimes: np.add.at (narrow) / spgemm
            if len(keys) == 0:
                break
            slots = keys // n
            nodes = keys - slots * n
            r = residue[keys]
            mask = r > (thresh[nodes] if per_node else thresh)
            if budget is not None:
                mask &= pushes[slots] < budget
            if not mask.all():
                slots, nodes, keys, r = (slots[mask], nodes[mask],
                                         keys[mask], r[mask])
            if len(keys) and budget is not None:
                keep = _budget_truncate(slots, pushes, budget)
                if not keep.all():
                    slots, nodes, keys, r = (slots[keep], nodes[keep],
                                             keys[keep], r[keep])
            if len(keys) == 0:
                break
            if budget is not None:
                pushes += np.bincount(slots, minlength=b)
            residue[keys] = 0.0
            estimate[keys] += alpha * r
            if may_dangle:
                dangling = degrees[nodes] == 0
                if dangling.any():
                    # dangling: the walk terminates with the full residue
                    estimate[keys[dangling]] += decay * r[dangling]
                    act = ~dangling
                    slots, nodes, r = slots[act], nodes[act], r[act]
                    if len(nodes) == 0:
                        break
            if len(nodes) > frontier_peak:
                frontier_peak = len(nodes)
            counts = row_indptr[nodes + 1] - row_indptr[nodes]
            total_arcs = int(counts.sum())
            if total_arcs == 0:
                break
            if total_arcs < spgemm_at:
                it_narrow += 1
                # narrow: explicit gather + np.add.at + sort-dedupe
                targets, counts = _gather_rows(row_indptr, row_indices,
                                               nodes, counts)
                shares = decay * np.repeat(r, counts)
                if degrees is not None:
                    shares /= np.repeat(degrees[nodes], counts)
                if arc_weights is not None:
                    shares *= arc_weights[targets]
                keys = _scatter_candidates(
                    residue, np.repeat(slots, counts) * n + targets,
                    shares)
            else:
                # middle: one sparse product scatters + finds frontier
                it_middle += 1
                if mat is None:
                    mat = make_mat()
                f_indptr = np.zeros(b + 1, dtype=np.int64)
                np.cumsum(np.bincount(slots, minlength=b),
                          out=f_indptr[1:])
                frontier = sp.csr_matrix((decay * r, nodes, f_indptr),
                                         shape=(b, n))
                spread = frontier @ mat
                nodes = spread.indices.astype(np.int64, copy=False)
                slots = np.repeat(np.arange(b, dtype=np.int64),
                                  np.diff(spread.indptr))
                keys = slots * n + nodes
                residue[keys] += spread.data   # product keys are unique
            if budget is None and len(keys) >= wide_enter:
                # node-major copies so the mat-vec streams contiguously
                r2 = np.ascontiguousarray(residue.reshape(b, n).T)
                e2 = np.ascontiguousarray(estimate.reshape(b, n).T)
                dense = True
        else:
            # ---------------- wide regime: dense (n, b) sweeps
            mask = r2 > (thresh[:, None] if per_node else thresh)
            count = np.count_nonzero(mask)
            if count < wide_exit:
                # hand the tail back to the flat regimes
                estimate = e2.T.copy().reshape(size)
                residue = r2.T.copy().reshape(size)
                dense = False
                if count == 0:
                    break
                frontier_nodes, frontier_slots = np.nonzero(mask)
                keys = np.sort(frontier_slots * n + frontier_nodes)
                continue
            it_wide += 1
            if count > frontier_peak:
                frontier_peak = count
            pushed = np.where(mask, r2, 0.0)
            r2[mask] = 0.0
            if mat is None:
                mat = make_mat()
            spread = mat.T @ pushed        # csc view: same operator
            if degrees is not None:
                np.multiply(pushed, est_scale[:, None], out=pushed)
            else:
                np.multiply(pushed, alpha, out=pushed)
            e2 += pushed
            np.multiply(spread, decay, out=spread)
            r2 += spread
    if dense:
        estimate = e2.T.copy().reshape(size)
        residue = r2.T.copy().reshape(size)
    if obs.enabled():
        registry = obs.get_registry()
        for regime, iters in (("narrow", it_narrow), ("middle", it_middle),
                              ("wide", it_wide)):
            if iters:
                registry.counter(
                    "kernel_regime_iterations_total",
                    {"regime": regime, "direction": direction}).inc(iters)
        registry.histogram("kernel_iterations",
                           {"direction": direction}).observe(
            it_narrow + it_middle + it_wide)
        registry.gauge("kernel_frontier_peak",
                       {"direction": direction}).set(frontier_peak)
    return estimate.reshape(b, n), residue.reshape(b, n)


def _forward_numpy(graph: Graph, sources: np.ndarray, alpha: float,
                   r_max: float, budget: int | None,
                   ) -> tuple[np.ndarray, np.ndarray]:
    n = graph.num_nodes
    degrees = graph.out_degrees
    thresh = r_max * np.maximum(degrees, 1).astype(np.float64)
    return _push_numpy(
        n, len(sources), sources, np.ones(len(sources)), thresh, alpha,
        budget, graph.indptr, graph.indices, None,
        graph.transition_matrix,      # M = P carries the 1/deg weights
        degrees, direction="forward")


def _backward_numpy(graph: Graph, targets: np.ndarray, alpha: float,
                    r_max: float, budget: int | None,
                    ) -> tuple[np.ndarray, np.ndarray]:
    n = graph.num_nodes
    transpose = graph.transpose()
    inv_out = graph.out_degree_inverse()
    # dangling targets seed 1/alpha (termination-PPR consistency; see
    # the module docstring and backward_push.py)
    seeds_vals = np.where(graph.out_degrees[targets] > 0, 1.0, 1.0 / alpha)

    def make_mat() -> sp.csr_matrix:
        # M = P^T: row v lists in-neighbors u, each weighted 1/d_out(u)
        return sp.csr_matrix(
            (inv_out[transpose.indices], transpose.indices,
             transpose.indptr), shape=(n, n))

    return _push_numpy(
        n, len(targets), targets, seeds_vals, float(r_max), alpha, budget,
        transpose.indptr, transpose.indices, inv_out, make_mat, None,
        direction="backward")


# ----------------------------------------------------------------------
# numba backend: nopython-compatible loops, compiled on demand.
# These run (slowly) as plain Python too, which is how the fast suite
# unit-tests their logic without the optional dependency installed.
# ----------------------------------------------------------------------

def _forward_push_loop(indptr, indices, degrees, sources, n, alpha, r_max,
                       budget, estimate, residue):
    """Frontier-synchronous forward push over flat ``(b * n,)`` buffers."""
    b = sources.shape[0]
    cur = np.empty(n, dtype=np.int64)
    nxt = np.empty(n, dtype=np.int64)
    in_nxt = np.zeros(n, dtype=np.uint8)
    for s in range(b):
        off = s * n
        residue[off + sources[s]] = 1.0
        cur[0] = sources[s]
        cur_len = 1
        pushes = 0
        while cur_len > 0 and pushes < budget:
            nxt_len = 0
            for i in range(cur_len):
                v = cur[i]
                r_v = residue[off + v]
                deg = degrees[v]
                scale = deg if deg > 1 else 1
                if r_v <= r_max * scale or pushes >= budget:
                    continue
                pushes += 1
                residue[off + v] = 0.0
                estimate[off + v] += alpha * r_v
                if deg == 0:
                    estimate[off + v] += (1.0 - alpha) * r_v
                    continue
                share = (1.0 - alpha) * r_v / deg
                for j in range(indptr[v], indptr[v + 1]):
                    u = indices[j]
                    residue[off + u] += share
                    du = degrees[u]
                    su = du if du > 1 else 1
                    if residue[off + u] > r_max * su and in_nxt[u] == 0:
                        in_nxt[u] = 1
                        nxt[nxt_len] = u
                        nxt_len += 1
            for i in range(nxt_len):
                in_nxt[nxt[i]] = 0
            tmp = cur
            cur = nxt
            nxt = tmp
            cur_len = nxt_len


def _backward_push_loop(t_indptr, t_indices, inv_out, seeds, targets, n,
                        alpha, r_max, budget, estimate, residue):
    """Frontier-synchronous backward push over flat ``(b * n,)`` buffers."""
    b = targets.shape[0]
    cur = np.empty(n, dtype=np.int64)
    nxt = np.empty(n, dtype=np.int64)
    in_nxt = np.zeros(n, dtype=np.uint8)
    for s in range(b):
        off = s * n
        residue[off + targets[s]] = seeds[s]
        cur[0] = targets[s]
        cur_len = 1
        pushes = 0
        while cur_len > 0 and pushes < budget:
            nxt_len = 0
            for i in range(cur_len):
                v = cur[i]
                r_v = residue[off + v]
                if r_v <= r_max or pushes >= budget:
                    continue
                pushes += 1
                residue[off + v] = 0.0
                estimate[off + v] += alpha * r_v
                for j in range(t_indptr[v], t_indptr[v + 1]):
                    u = t_indices[j]
                    residue[off + u] += (1.0 - alpha) * r_v * inv_out[u]
                    if residue[off + u] > r_max and in_nxt[u] == 0:
                        in_nxt[u] = 1
                        nxt[nxt_len] = u
                        nxt_len += 1
            for i in range(nxt_len):
                in_nxt[nxt[i]] = 0
            tmp = cur
            cur = nxt
            nxt = tmp
            cur_len = nxt_len


_JIT: dict | None = None


def _jit_kernels() -> dict:
    """Compile (once) and return the njit-wrapped push loops."""
    global _JIT
    if _JIT is None:
        import numba
        jit = numba.njit(cache=False, nogil=True)
        _JIT = {"forward": jit(_forward_push_loop),
                "backward": jit(_backward_push_loop)}
    return _JIT


def _forward_numba(graph: Graph, sources: np.ndarray, alpha: float,
                   r_max: float, budget: int | None,
                   ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
    b, n = len(sources), graph.num_nodes
    estimate = np.zeros(b * n)
    residue = np.zeros(b * n)
    _jit_kernels()["forward"](
        graph.indptr, graph.indices, graph.out_degrees, sources, n,
        float(alpha), float(r_max),
        _DEFAULT_BUDGET if budget is None else int(budget),
        estimate, residue)
    return estimate.reshape(b, n), residue.reshape(b, n)


def _backward_numba(graph: Graph, targets: np.ndarray, alpha: float,
                    r_max: float, budget: int | None,
                    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover
    b, n = len(targets), graph.num_nodes
    transpose = graph.transpose()
    seeds = np.where(graph.out_degrees[targets] > 0, 1.0, 1.0 / alpha)
    estimate = np.zeros(b * n)
    residue = np.zeros(b * n)
    _jit_kernels()["backward"](
        transpose.indptr, transpose.indices, graph.out_degree_inverse(),
        seeds, targets, n, float(alpha), float(r_max),
        _DEFAULT_BUDGET if budget is None else int(budget),
        estimate, residue)
    return estimate.reshape(b, n), residue.reshape(b, n)


# ----------------------------------------------------------------------
# public batched API
# ----------------------------------------------------------------------

def forward_push_batch(graph: Graph, sources, alpha: float = 0.15, *,
                       r_max: float = 1e-6, max_pushes: int | None = None,
                       kernel: str | None = None,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Forward push from many sources at once.

    Returns ``(estimate, residue)``, each ``(len(sources), n)``; row
    ``i`` obeys every invariant of single-source
    :func:`repro.ppr.forward_push` for ``sources[i]`` (``estimate <=
    pi`` elementwise, ``pi - estimate <= sum(residue)``, mass
    conserved). ``max_pushes`` is a *per-source* budget, matching the
    scalar function.
    """
    sources = _validate_batch(graph, sources, alpha, r_max, max_pushes,
                              "source")
    b, n = len(sources), graph.num_nodes
    kern = resolve_kernel(kernel)
    if obs.enabled():
        registry = obs.get_registry()
        registry.counter("kernel_invocations_total",
                         {"kernel": kern, "direction": "forward"}).inc()
        registry.histogram("kernel_batch_size",
                           {"direction": "forward"}).observe(b)
    if b == 0 or n == 0:
        return np.zeros((b, n)), np.zeros((b, n))
    budget = None if max_pushes is None else int(max_pushes)
    if kern == "scalar":
        estimate = np.zeros((b, n))
        residue = np.zeros((b, n))
        scalar_budget = _DEFAULT_BUDGET if budget is None else budget
        for i, source in enumerate(sources):
            estimate[i], residue[i] = _forward_push_scalar(
                graph, int(source), alpha, r_max, scalar_budget)
        return estimate, residue
    if kern == "numba":
        return _forward_numba(graph, sources, alpha, r_max, budget)
    return _forward_numpy(graph, sources, alpha, r_max, budget)


def backward_push_batch(graph: Graph, targets, alpha: float = 0.15, *,
                        r_max: float = 1e-4, max_pushes: int | None = None,
                        kernel: str | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Backward push toward many targets at once.

    Returns ``(estimate, residue)``, each ``(len(targets), n)``; row
    ``i`` estimates the PPR *column* ``pi(., targets[i])`` with
    ``estimate[s] <= pi(s, t) <= estimate[s] + r_max`` at termination,
    exactly like single-target :func:`repro.ppr.backward_push`
    (including the ``1/alpha`` dangling-target residue seeding).
    """
    targets = _validate_batch(graph, targets, alpha, r_max, max_pushes,
                              "target")
    b, n = len(targets), graph.num_nodes
    kern = resolve_kernel(kernel)
    if obs.enabled():
        registry = obs.get_registry()
        registry.counter("kernel_invocations_total",
                         {"kernel": kern, "direction": "backward"}).inc()
        registry.histogram("kernel_batch_size",
                           {"direction": "backward"}).observe(b)
    if b == 0 or n == 0:
        return np.zeros((b, n)), np.zeros((b, n))
    budget = None if max_pushes is None else int(max_pushes)
    if kern == "scalar":
        estimate = np.zeros((b, n))
        residue = np.zeros((b, n))
        scalar_budget = _DEFAULT_BUDGET if budget is None else budget
        for i, target in enumerate(targets):
            estimate[i], residue[i] = _backward_push_scalar(
                graph, int(target), alpha, r_max, scalar_budget)
        return estimate, residue
    if kern == "numba":
        return _backward_numba(graph, targets, alpha, r_max, budget)
    return _backward_numpy(graph, targets, alpha, r_max, budget)


# ----------------------------------------------------------------------
# frontier spread (the streaming residue repair's inner step)
# ----------------------------------------------------------------------

def spread_frontier(graph: Graph, frontier, delta: np.ndarray, *,
                    decay: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """One push sweep of dense residue rows: ``decay * P[:, frontier] @ delta``.

    ``delta`` holds one length-``k`` residue row per frontier node; the
    sweep moves row ``v`` to every in-neighbor ``u`` scaled by
    ``decay / d_out(u)`` — the multi-column analogue of a backward push
    step, evaluated with the same CSR gather/scatter plumbing as the
    push kernels (no sparse-matrix slicing, no ``O(n)`` buffers).
    Returns ``(rows, spread)``: the sorted affected row indices and
    their dense ``(len(rows), k)`` contributions.
    """
    frontier = np.asarray(frontier, dtype=np.int64).ravel()
    delta = np.asarray(delta, dtype=np.float64)
    if delta.ndim != 2 or delta.shape[0] != len(frontier):
        raise ParameterError(
            f"delta must be (len(frontier), k), got {delta.shape} for "
            f"{len(frontier)} frontier nodes")
    if len(frontier) and (frontier.min() < 0
                          or frontier.max() >= graph.num_nodes):
        raise ParameterError(
            f"frontier node out of range [0, {graph.num_nodes})")
    if obs.enabled():
        registry = obs.get_registry()
        registry.counter("kernel_spread_frontier_total").inc()
        registry.histogram("kernel_spread_frontier_rows").observe(
            len(frontier))
    transpose = graph.transpose()
    in_nb, counts = _gather_rows(transpose.indptr, transpose.indices,
                                 frontier)
    if len(in_nb) == 0:
        return (np.empty(0, dtype=np.int64),
                np.empty((0, delta.shape[1])))
    weights = decay * graph.out_degree_inverse()[in_nb]
    expand = np.repeat(np.arange(len(frontier), dtype=np.int64), counts)
    rows, inverse = np.unique(in_nb, return_inverse=True)
    spread = np.zeros((len(rows), delta.shape[1]))
    np.add.at(spread, inverse, delta[expand] * weights[:, None])
    return rows, spread
