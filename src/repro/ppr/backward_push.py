"""Single-target backward (reverse) push — the STRAP baseline's engine.

Estimates the PPR column ``pi(., target)`` for all sources at once
(Lofgren & Goel style, adapted to termination-PPR). Invariant:

    pi(s, t) = p(s) + sum_v r(v) * pi(s, v -> contributes via walks)

maintained by the reverse of the forward-push rule: when node ``v`` is
pushed, each in-neighbor ``u`` receives ``(1 - alpha) r(v) / d_out(u)``.
All entries obey ``pi(s, t) - p(s) <= r_max`` at termination.

Termination-PPR consistency for dangling targets: a walk that reaches a
node with no out-edges stops there with probability 1, not alpha, so
``pi(., t)`` equals the arrival probability rather than alpha times the
expected visit count. Seeding the residue with ``1/alpha`` folds that
correction into the standard push rule (the alpha self-term of the
first push then credits the full mass), matching what ``ppr_rows`` /
``forward_push`` / ``monte_carlo`` compute.

Since the kernel layer landed this is a thin single-target wrapper over
:func:`repro.ppr.kernels.backward_push_batch` (which applies the same
dangling-target seeding); the push loop backend is selected by the
``kernel=`` argument / ``REPRO_KERNEL`` environment variable (see
:mod:`repro.ppr.kernels`).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .kernels import backward_push_batch

__all__ = ["backward_push"]


def backward_push(graph: Graph, target: int, alpha: float = 0.15, *,
                  r_max: float = 1e-4, max_pushes: int | None = None,
                  kernel: str | None = None,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Approximate the column ``pi(., target)``.

    Returns ``(estimate, residue)`` with
    ``estimate[s] <= pi(s, target) <= estimate[s] + r_max`` for every
    source ``s`` once no residue exceeds ``r_max``.
    """
    estimate, residue = backward_push_batch(
        graph, np.asarray([target], dtype=np.int64), alpha, r_max=r_max,
        max_pushes=max_pushes, kernel=kernel)
    return estimate[0], residue[0]
