"""Single-target backward (reverse) push — the STRAP baseline's engine.

Estimates the PPR column ``pi(., target)`` for all sources at once
(Lofgren & Goel style, adapted to termination-PPR). Invariant:

    pi(s, t) = p(s) + sum_v r(v) * pi(s, v -> contributes via walks)

maintained by the reverse of the forward-push rule: when node ``v`` is
pushed, each in-neighbor ``u`` receives ``(1 - alpha) r(v) / d_out(u)``.
All entries obey ``pi(s, t) - p(s) <= r_max`` at termination.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ParameterError
from ..graph import Graph

__all__ = ["backward_push"]


def backward_push(graph: Graph, target: int, alpha: float = 0.15, *,
                  r_max: float = 1e-4, max_pushes: int | None = None,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Approximate the column ``pi(., target)``.

    Returns ``(estimate, residue)`` with
    ``estimate[s] <= pi(s, target) <= estimate[s] + r_max`` for every
    source ``s`` once no residue exceeds ``r_max``.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    if r_max <= 0:
        raise ParameterError("r_max must be positive")
    n = graph.num_nodes
    transpose = graph.transpose()
    out_deg = graph.out_degrees
    estimate = np.zeros(n)
    residue = np.zeros(n)
    # Termination-PPR consistency for dangling targets: a walk that
    # reaches a node with no out-edges stops there with probability 1,
    # not alpha, so pi(., t) equals the arrival probability rather than
    # alpha times the expected visit count. Seeding the residue with
    # 1/alpha folds that correction into the standard push rule (the
    # alpha self-term of the first push then credits the full mass),
    # matching what ppr_rows / forward_push / monte_carlo compute.
    residue[target] = 1.0 if out_deg[target] > 0 else 1.0 / alpha
    queue: deque[int] = deque([target])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[target] = True
    budget = max_pushes if max_pushes is not None else 10_000_000
    pushes = 0
    while queue and pushes < budget:
        v = queue.popleft()
        in_queue[v] = False
        r_v = residue[v]
        if r_v <= r_max:
            continue
        pushes += 1
        residue[v] = 0.0
        estimate[v] += alpha * r_v
        in_neighbors = transpose.out_neighbors(v)
        if len(in_neighbors) == 0:
            continue
        residue[in_neighbors] += (1.0 - alpha) * r_v / out_deg[in_neighbors]
        for u in in_neighbors[residue[in_neighbors] > r_max]:
            if not in_queue[u]:
                queue.append(int(u))
                in_queue[u] = True
    return estimate, residue
