"""Local forward push for single-source PPR (Andersen et al., FOCS 2006).

Adapted to the paper's termination-style PPR: pushing a node ``v`` moves
``alpha * r(v)`` into the estimate ``p(v)`` and spreads the remaining
``(1 - alpha) r(v)`` uniformly over out-neighbors. The invariant

    pi(s, t) = p(t) + sum_v r(v) * pi(v, t)

holds throughout, which gives the standard additive guarantee
``pi(s, v) - p(v) <= r_max * d_out(v)`` under the degree-scaled
threshold used here (the scan stops once every residue satisfies
``r(v) <= r_max * d_out(v)``).

Since the kernel layer landed this is a thin single-source wrapper over
:func:`repro.ppr.kernels.forward_push_batch`; the actual push loop —
frontier-synchronous NumPy by default, ``numba``-compiled when the
optional dependency is installed, or the seed scalar loop — is selected
by the ``kernel=`` argument / ``REPRO_KERNEL`` environment variable
(see :mod:`repro.ppr.kernels`).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .kernels import forward_push_batch

__all__ = ["forward_push"]


def forward_push(graph: Graph, source: int, alpha: float = 0.15, *,
                 r_max: float = 1e-6, max_pushes: int | None = None,
                 kernel: str | None = None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Approximate ``pi(source, .)`` by local pushes.

    Returns ``(estimate, residue)``; ``estimate[v] <= pi(source, v)`` and
    the left-over probability mass equals ``residue.sum()``.
    """
    estimate, residue = forward_push_batch(
        graph, np.asarray([source], dtype=np.int64), alpha, r_max=r_max,
        max_pushes=max_pushes, kernel=kernel)
    return estimate[0], residue[0]
