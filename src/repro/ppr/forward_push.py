"""Local forward push for single-source PPR (Andersen et al., FOCS 2006).

Adapted to the paper's termination-style PPR: pushing a node ``v`` moves
``alpha * r(v)`` into the estimate ``p(v)`` and spreads the remaining
``(1 - alpha) r(v)`` uniformly over out-neighbors. The invariant

    pi(s, t) = p(t) + sum_v r(v) * pi(v, t)

holds throughout, which gives the standard additive guarantee
``pi(s, v) - p(v) <= r_max * d_out(v)`` under the degree-scaled
threshold used here (the scan stops once every residue satisfies
``r(v) <= r_max * d_out(v)``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ParameterError
from ..graph import Graph

__all__ = ["forward_push"]


def forward_push(graph: Graph, source: int, alpha: float = 0.15, *,
                 r_max: float = 1e-6, max_pushes: int | None = None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Approximate ``pi(source, .)`` by local pushes.

    Returns ``(estimate, residue)``; ``estimate[v] <= pi(source, v)`` and
    the left-over probability mass equals ``residue.sum()``.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    if r_max <= 0:
        raise ParameterError("r_max must be positive")
    n = graph.num_nodes
    degrees = graph.out_degrees
    estimate = np.zeros(n)
    residue = np.zeros(n)
    residue[source] = 1.0
    queue: deque[int] = deque([source])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[source] = True
    budget = max_pushes if max_pushes is not None else 10_000_000
    pushes = 0
    while queue and pushes < budget:
        v = queue.popleft()
        in_queue[v] = False
        r_v = residue[v]
        deg = degrees[v]
        if r_v <= r_max * max(deg, 1):
            continue
        pushes += 1
        residue[v] = 0.0
        estimate[v] += alpha * r_v
        if deg == 0:
            # dangling: the walk terminates here with the full residue
            estimate[v] += (1.0 - alpha) * r_v
            continue
        share = (1.0 - alpha) * r_v / deg
        neighbors = graph.out_neighbors(v)
        residue[neighbors] += share
        for u in neighbors[residue[neighbors] > r_max * np.maximum(degrees[neighbors], 1)]:
            if not in_queue[u]:
                queue.append(int(u))
                in_queue[u] = True
    return estimate, residue
