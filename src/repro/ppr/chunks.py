"""Shared row-chunk grid used by every chunked kernel in the package.

The chunked fit pipeline (ApproxPPR power iterations, reweighting
precomputation, Jacobi sweeps, block-sparse operator products) all
partition node rows the same way: contiguous ``[start, stop)`` blocks of
``chunk_size`` rows. Centralizing the grid matters for determinism —
results of a chunked computation are a function of the grid, so two
stages (or two worker counts) that share ``chunk_size`` produce
bit-identical outputs.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ParameterError

__all__ = ["DEFAULT_CHUNK_SIZE", "resolve_chunk_size", "iter_chunks",
           "num_chunks"]

#: Default rows per chunk when the caller does not pin one. Large enough
#: that per-chunk overhead (one IPC round trip, one BLAS call) amortizes,
#: small enough that a chunk of a 128-dim float64 embedding stays in the
#: low tens of megabytes.
DEFAULT_CHUNK_SIZE = 8192


def resolve_chunk_size(num_rows: int, chunk_size: int | None = None) -> int:
    """Validate and resolve a chunk size for ``num_rows`` rows.

    ``None`` selects :data:`DEFAULT_CHUNK_SIZE`; the result is clamped
    to ``[1, num_rows]`` (a single full-width chunk degenerates to the
    unchunked computation). Non-positive explicit values raise
    :class:`ParameterError` — the resolved grid must never depend on a
    silently "fixed up" input.
    """
    if num_rows < 0:
        raise ParameterError(f"num_rows must be >= 0, got {num_rows}")
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if int(chunk_size) != chunk_size or chunk_size < 1:
        raise ParameterError(f"chunk_size must be a positive integer, "
                             f"got {chunk_size!r}")
    return max(1, min(int(chunk_size), max(num_rows, 1)))


def iter_chunks(num_rows: int, chunk_size: int | None = None,
                ) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` row bounds covering ``0 .. num_rows``."""
    size = resolve_chunk_size(num_rows, chunk_size)
    for start in range(0, num_rows, size):
        yield start, min(num_rows, start + size)


def num_chunks(num_rows: int, chunk_size: int | None = None) -> int:
    """Number of chunks :func:`iter_chunks` will yield."""
    size = resolve_chunk_size(num_rows, chunk_size)
    return max(0, -(-num_rows // size))
