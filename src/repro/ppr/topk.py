"""Top-L personalized PageRank (the TopPPR discussion of paper §3.1).

The paper argues that building embeddings from per-node top-L PPR (the
STRAP/TopPPR route) either costs super-quadratic time or zeroes out
most of Pi. This module provides the top-L primitive so that argument
can be demonstrated: an exact variant (small graphs) and a FORA-backed
approximate variant with iterative refinement until the top-L set is
separated by the current error bound.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng
from .fora import fora
from .power_iteration import ppr_row

__all__ = ["top_k_ppr", "top_k_ppr_exact"]


def top_k_ppr_exact(graph: Graph, source: int, k: int,
                    alpha: float = 0.15) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` PPR targets of ``source`` (descending), excluding
    the source itself. Returns ``(nodes, values)``."""
    if k < 1:
        raise ParameterError("k must be >= 1")
    row = ppr_row(graph, source, alpha)
    row = row.copy()
    row[source] = -1.0                       # rank other nodes only
    k = min(k, graph.num_nodes - 1)
    top = np.argpartition(-row, k - 1)[:k]
    order = np.argsort(-row[top], kind="stable")
    nodes = top[order]
    return nodes, row[nodes]


def top_k_ppr(graph: Graph, source: int, k: int, alpha: float = 0.15, *,
              r_max: float = 1e-3, refinements: int = 4,
              seed=None, kernel: str | None = None,
              ) -> tuple[np.ndarray, np.ndarray]:
    """Approximate top-``k`` PPR via FORA with geometric refinement.

    Each round halves ``r_max`` (quadrupling effective accuracy) until
    the gap between the k-th and (k+1)-th estimated values exceeds the
    residual error scale, or the refinement budget runs out.
    """
    if k < 1:
        raise ParameterError("k must be >= 1")
    rng = ensure_rng(seed)
    k = min(k, graph.num_nodes - 1)
    estimate = None
    for _ in range(max(1, refinements)):
        estimate = fora(graph, source, alpha, r_max=r_max, seed=rng,
                        kernel=kernel)
        ranked = estimate.copy()
        ranked[source] = -1.0
        top = np.sort(np.partition(-ranked, k)[:k + 1] * -1)[::-1]
        gap = top[-2] - top[-1] if len(top) > 1 else 0.0
        if gap > r_max * 4:
            break
        r_max /= 2.0
    ranked = estimate.copy()
    ranked[source] = -1.0
    top = np.argpartition(-ranked, k - 1)[:k]
    order = np.argsort(-ranked[top], kind="stable")
    nodes = top[order]
    return nodes, estimate[nodes]
