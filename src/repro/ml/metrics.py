"""Evaluation metrics: AUC, precision@K, micro/macro F1.

Implemented from scratch (no sklearn in this environment) and pinned by
property tests against brute-force definitions.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from ..errors import DimensionError, ParameterError

__all__ = ["auc_score", "precision_at_k", "micro_f1", "macro_f1", "accuracy"]


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann–Whitney statistic.

    Handles ties by average ranks — identical to the probabilistic
    definition ``P(score+ > score-) + 0.5 P(score+ = score-)``.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise DimensionError("labels and scores must align")
    num_pos = int(labels.sum())
    num_neg = len(labels) - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ParameterError("AUC needs both positive and negative examples")
    ranks = rankdata(scores)
    rank_sum = float(ranks[labels].sum())
    return (rank_sum - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg)


def precision_at_k(labels: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of the ``k`` highest-scored items whose label is positive.

    Ties at the boundary are broken by (stable) descending score order,
    matching the paper's protocol of examining the top-K node pairs.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise DimensionError("labels and scores must align")
    if k < 1:
        raise ParameterError("k must be >= 1")
    # K stays in the denominator even when it exceeds the candidate count,
    # matching the paper's precision@K curves (which keep growing K)
    take = min(k, len(scores))
    if take == len(scores):
        top = np.arange(len(scores))
    else:
        top = np.argpartition(-scores, take - 1)[:take]
    return float(labels[top].sum()) / k


def _confusion_counts(true: np.ndarray, pred: np.ndarray,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    tp = np.logical_and(true == 1, pred == 1).sum(axis=0).astype(np.float64)
    fp = np.logical_and(true == 0, pred == 1).sum(axis=0).astype(np.float64)
    fn = np.logical_and(true == 1, pred == 0).sum(axis=0).astype(np.float64)
    return tp, fp, fn


def micro_f1(true: np.ndarray, pred: np.ndarray) -> float:
    """Micro-averaged F1 for binary membership matrices ``(n, L)``."""
    true = np.atleast_2d(np.asarray(true))
    pred = np.atleast_2d(np.asarray(pred))
    if true.shape != pred.shape:
        raise DimensionError("true and pred must have identical shapes")
    tp, fp, fn = _confusion_counts(true, pred)
    denom = 2.0 * tp.sum() + fp.sum() + fn.sum()
    return float(2.0 * tp.sum() / denom) if denom > 0 else 0.0


def macro_f1(true: np.ndarray, pred: np.ndarray) -> float:
    """Macro-averaged F1: unweighted mean of per-label F1 (0/0 -> 0)."""
    true = np.atleast_2d(np.asarray(true))
    pred = np.atleast_2d(np.asarray(pred))
    if true.shape != pred.shape:
        raise DimensionError("true and pred must have identical shapes")
    tp, fp, fn = _confusion_counts(true, pred)
    denom = 2.0 * tp + fp + fn
    per_label = np.where(denom > 0, 2.0 * tp / np.maximum(denom, 1.0), 0.0)
    return float(per_label.mean())


def accuracy(true: np.ndarray, pred: np.ndarray) -> float:
    """Plain elementwise accuracy."""
    true = np.asarray(true)
    pred = np.asarray(pred)
    if true.shape != pred.shape:
        raise DimensionError("true and pred must have identical shapes")
    return float((true == pred).mean())
