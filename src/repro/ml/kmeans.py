"""Small k-means (Lloyd's algorithm with k-means++ seeding).

Substrate for the NetHiex baseline's latent taxonomy construction.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = ["kmeans"]


def kmeans(points: np.ndarray, num_clusters: int, *, max_iters: int = 50,
           seed=None) -> tuple[np.ndarray, np.ndarray]:
    """Cluster rows of ``points``; returns ``(assignments, centroids)``."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if num_clusters < 1 or num_clusters > n:
        raise ParameterError("num_clusters must be in [1, n]")
    rng = ensure_rng(seed)

    # k-means++ seeding
    centroids = np.empty((num_clusters, points.shape[1]))
    centroids[0] = points[rng.integers(0, n)]
    dist_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for c in range(1, num_clusters):
        total = dist_sq.sum()
        if total <= 0:
            centroids[c:] = points[rng.integers(0, n, size=num_clusters - c)]
            break
        probs = dist_sq / total
        centroids[c] = points[rng.choice(n, p=probs)]
        dist_sq = np.minimum(dist_sq,
                             ((points - centroids[c]) ** 2).sum(axis=1))

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        # squared distances to every centroid, (n, k)
        d2 = (points * points).sum(axis=1, keepdims=True) \
            - 2.0 * points @ centroids.T \
            + (centroids * centroids).sum(axis=1)[None, :]
        new_assign = d2.argmin(axis=1)
        if np.array_equal(new_assign, assignments) and _ > 0:
            break
        assignments = new_assign
        for c in range(num_clusters):
            members = points[assignments == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:   # re-seed an empty cluster at the farthest point
                far = d2.min(axis=1).argmax()
                centroids[c] = points[far]
    return assignments, centroids
