"""Feature preprocessing helpers shared by the evaluation tasks."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_rows", "standardize_columns", "hadamard_features",
           "concat_features"]


def normalize_rows(matrix: np.ndarray, *, order: int = 2) -> np.ndarray:
    """L_p-normalize each row; all-zero rows are returned unchanged."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, ord=order, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


def standardize_columns(matrix: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance columns (constant columns left at zero)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    mean = matrix.mean(axis=0, keepdims=True)
    std = matrix.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    return (matrix - mean) / std


def concat_features(features: np.ndarray, src: np.ndarray,
                    dst: np.ndarray) -> np.ndarray:
    """The paper's edge-features representation: ``[f(u); f(v)]``."""
    return np.hstack([features[src], features[dst]])


def hadamard_features(features: np.ndarray, src: np.ndarray,
                      dst: np.ndarray) -> np.ndarray:
    """Element-wise product edge features (node2vec's alternative)."""
    return features[src] * features[dst]
