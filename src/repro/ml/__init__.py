"""ML substrate: logistic regression, metrics, feature preprocessing."""

from .logistic import LogisticRegression, OneVsRestLogistic
from .metrics import accuracy, auc_score, macro_f1, micro_f1, precision_at_k
from .preprocess import (concat_features, hadamard_features, normalize_rows,
                         standardize_columns)

__all__ = [
    "LogisticRegression", "OneVsRestLogistic",
    "auc_score", "precision_at_k", "micro_f1", "macro_f1", "accuracy",
    "normalize_rows", "standardize_columns", "concat_features",
    "hadamard_features",
]
