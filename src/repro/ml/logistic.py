"""Logistic regression, binary and one-vs-rest (the paper's classifier).

The paper trains a one-vs-all logistic regression on node embeddings for
classification (Section 5.4) and on concatenated edge features for the
edge-features link-prediction variant (Section 5.2). No sklearn here, so
this is a from-scratch implementation: L2-regularized negative
log-likelihood minimized with scipy's L-BFGS (gradient supplied), with a
plain gradient-descent fallback if scipy's optimizer ever fails.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from ..errors import DimensionError, ParameterError

__all__ = ["LogisticRegression", "OneVsRestLogistic"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Parameters
    ----------
    reg:
        L2 coefficient on the weights (not the intercept).
    max_iters:
        Optimizer iteration budget.
    """

    def __init__(self, reg: float = 1.0, max_iters: int = 200) -> None:
        if reg < 0:
            raise ParameterError("reg must be nonnegative")
        self.reg = reg
        self.max_iters = max_iters
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _loss_grad(self, params: np.ndarray, features: np.ndarray,
                   labels: np.ndarray) -> tuple[float, np.ndarray]:
        w, b = params[:-1], params[-1]
        z = features @ w + b
        # log(1 + exp(z)) - y z, computed stably
        loss = float(np.sum(np.logaddexp(0.0, z) - labels * z))
        loss += 0.5 * self.reg * float(w @ w)
        p = _sigmoid(z)
        grad_w = features.T @ (p - labels) + self.reg * w
        grad_b = float(np.sum(p - labels))
        return loss, np.concatenate([grad_w, [grad_b]])

    def fit(self, features: np.ndarray, labels: np.ndarray,
            ) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if len(features) != len(labels):
            raise DimensionError("features and labels must align")
        start = np.zeros(features.shape[1] + 1)
        result = minimize(self._loss_grad, start, args=(features, labels),
                          jac=True, method="L-BFGS-B",
                          options={"maxiter": self.max_iters})
        params = result.x
        if not np.all(np.isfinite(params)):           # pragma: no cover
            params = self._gradient_descent(features, labels)
        self.coef_ = params[:-1]
        self.intercept_ = float(params[-1])
        return self

    def _gradient_descent(self, features: np.ndarray,
                          labels: np.ndarray) -> np.ndarray:
        params = np.zeros(features.shape[1] + 1)
        lr = 1.0 / max(1.0, np.abs(features).max() ** 2 * len(features))
        for _ in range(self.max_iters * 5):
            _, grad = self._loss_grad(params, features, labels)
            params -= lr * grad
        return params

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise ParameterError("fit() must be called first")
        return np.asarray(features, dtype=np.float64) @ self.coef_ + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) per row."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0).astype(np.int8)


class OneVsRestLogistic:
    """One classifier per label; scores are per-label probabilities."""

    def __init__(self, reg: float = 1.0, max_iters: int = 200) -> None:
        self.reg = reg
        self.max_iters = max_iters
        self.models_: list[LogisticRegression] = []
        self.constant_: list[float | None] = []

    def fit(self, features: np.ndarray, membership: np.ndarray,
            ) -> "OneVsRestLogistic":
        membership = np.atleast_2d(np.asarray(membership))
        if len(features) != len(membership):
            raise DimensionError("features and membership must align")
        self.models_ = []
        self.constant_ = []
        for label in range(membership.shape[1]):
            col = membership[:, label].astype(np.float64)
            if col.min() == col.max():
                # degenerate label in the training split: constant probability
                self.models_.append(LogisticRegression(self.reg))
                self.constant_.append(float(col.max()))
                continue
            model = LogisticRegression(self.reg, self.max_iters)
            model.fit(features, col)
            self.models_.append(model)
            self.constant_.append(None)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.models_:
            raise ParameterError("fit() must be called first")
        n = len(features)
        out = np.empty((n, len(self.models_)))
        for j, (model, const) in enumerate(zip(self.models_, self.constant_)):
            out[:, j] = const if const is not None else model.predict_proba(features)
        return out
