"""The 9-node example graph of Figure 1 in the paper.

The paper never lists the edge set explicitly; it was reconstructed from
three constraints and validated against the paper's own numbers:

* the degree sequence implied by Example 2's initial forward weights
  (``w = dout = [3, 3, 4, 3, 4, 2, 2, 2, 1]``),
* "between v2 and v4 there are three different nodes connecting them,
  i.e. v1, v3 and v5" and "only one common neighbor between v9 and v7",
* the exact PPR rows of Table 1 (rows v2, v4, v9 match to 3 decimals;
  the paper's v7 row violates the reversibility identity
  ``d(u) pi(u,v) = d(v) pi(v,u)`` and is a known erratum).
"""

from __future__ import annotations

import numpy as np

from .build import from_edges
from .graph import Graph

__all__ = ["figure1_graph", "FIGURE1_EDGES", "TABLE1_PPR"]

#: Undirected edges of Figure 1, using 0-based node ids (paper uses v1..v9).
FIGURE1_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3),          # v1-v2, v1-v3, v1-v4
    (1, 2), (1, 4),                  # v2-v3, v2-v5
    (2, 3), (2, 4),                  # v3-v4, v3-v5
    (3, 4),                          # v4-v5
    (4, 5),                          # v5-v6
    (5, 6),                          # v6-v7
    (6, 7),                          # v7-v8
    (7, 8),                          # v8-v9
)

#: Table 1 of the paper: exact PPR rows for sources v2, v4, v7, v9 (alpha=0.15).
#: The v7 row is reproduced as printed even though it is internally
#: inconsistent (see module docstring); tests compare against v2/v4/v9 only.
TABLE1_PPR: dict[int, tuple[float, ...]] = {
    1: (0.15, 0.269, 0.188, 0.118, 0.17, 0.048, 0.029, 0.019, 0.008),
    3: (0.15, 0.118, 0.188, 0.269, 0.17, 0.048, 0.029, 0.019, 0.008),
    6: (0.036, 0.043, 0.056, 0.043, 0.093, 0.137, 0.29, 0.187, 0.12),
    8: (0.02, 0.024, 0.031, 0.024, 0.056, 0.083, 0.168, 0.311, 0.282),
}


def figure1_graph() -> Graph:
    """Return the undirected 9-node graph of the paper's Figure 1."""
    edges = np.asarray(FIGURE1_EDGES, dtype=np.int64)
    return from_edges(9, edges[:, 0], edges[:, 1], directed=False)
