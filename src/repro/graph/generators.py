"""Synthetic graph generators.

These provide the workloads for the paper's experiments:

* :func:`erdos_renyi` — the scalability sweeps of Fig. 10 (the paper cites
  the Erdős–Rényi model explicitly),
* :func:`powerlaw_community` — an LFR-style generator (power-law degrees +
  planted communities) used to simulate the seven real social/web graphs
  of Table 3, whose degree heterogeneity and community structure are what
  the embedding tasks actually exercise,
* :func:`chung_lu`, :func:`sbm`, :func:`barabasi_albert`,
  :func:`watts_strogatz`, :func:`rmat` — additional reference models used
  in tests and ablations.

All generators are deterministic given ``seed`` and return
:class:`repro.graph.Graph`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng
from .build import from_edges
from .graph import Graph

__all__ = ["erdos_renyi", "chung_lu", "powerlaw_community", "sbm",
           "barabasi_albert", "watts_strogatz", "rmat", "powerlaw_weights"]


def _dedup_pairs(src: np.ndarray, dst: np.ndarray, directed: bool,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Drop self loops and duplicate (unordered for undirected) pairs."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if not directed:
        lo, hi = np.minimum(src, dst), np.maximum(src, dst)
        src, dst = lo, hi
    key = src.astype(np.int64) * (dst.max() + 1 if len(dst) else 1) + dst
    _, idx = np.unique(key, return_index=True)
    idx.sort()
    return src[idx], dst[idx]


def erdos_renyi(num_nodes: int, num_edges: int, *, directed: bool = False,
                seed=None) -> Graph:
    """G(n, m): ``num_edges`` distinct uniform random edges, no self loops."""
    if num_nodes < 2:
        raise ParameterError("erdos_renyi needs at least 2 nodes")
    max_edges = num_nodes * (num_nodes - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise ParameterError(f"num_edges={num_edges} exceeds max {max_edges}")
    rng = ensure_rng(seed)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    have = 0
    while have < num_edges:
        want = int((num_edges - have) * 1.2) + 16
        s = rng.integers(0, num_nodes, size=want)
        d = rng.integers(0, num_nodes, size=want)
        src_parts.append(s)
        dst_parts.append(d)
        s_all = np.concatenate(src_parts)
        d_all = np.concatenate(dst_parts)
        s_all, d_all = _dedup_pairs(s_all, d_all, directed)
        src_parts, dst_parts = [s_all], [d_all]
        have = len(s_all)
    return from_edges(num_nodes, src_parts[0][:num_edges],
                      dst_parts[0][:num_edges], directed=directed)


def powerlaw_weights(num_nodes: int, exponent: float = 2.5,
                     min_weight: float = 1.0, seed=None) -> np.ndarray:
    """Pareto(exponent - 1) expected-degree weights, the Chung–Lu input."""
    if exponent <= 1.0:
        raise ParameterError("power-law exponent must exceed 1")
    rng = ensure_rng(seed)
    u = rng.random(num_nodes)
    return min_weight * (1.0 - u) ** (-1.0 / (exponent - 1.0))


def chung_lu(weights: np.ndarray, num_edges: int, *, directed: bool = False,
             seed=None) -> Graph:
    """Chung–Lu: endpoints drawn proportionally to ``weights``."""
    rng = ensure_rng(seed)
    w = np.asarray(weights, dtype=np.float64)
    p = w / w.sum()
    n = len(w)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    have = 0
    # Heavy-tailed weights produce many duplicate pairs; oversample and retry.
    while have < num_edges:
        want = int((num_edges - have) * 1.5) + 16
        s = rng.choice(n, size=want, p=p)
        d = rng.choice(n, size=want, p=p)
        src_parts.append(s)
        dst_parts.append(d)
        s_all, d_all = _dedup_pairs(np.concatenate(src_parts),
                                    np.concatenate(dst_parts), directed)
        src_parts, dst_parts = [s_all], [d_all]
        have = len(s_all)
    return from_edges(n, src_parts[0][:num_edges], dst_parts[0][:num_edges],
                      directed=directed)


def powerlaw_community(num_nodes: int, num_edges: int, *,
                       num_communities: int = 10, mixing: float = 0.2,
                       exponent: float = 2.5, directed: bool = False,
                       seed=None) -> tuple[Graph, np.ndarray]:
    """LFR-style graph: power-law degrees with planted communities.

    Each arc endpoint pair is sampled within one community with
    probability ``1 - mixing`` (endpoints ∝ node weight restricted to the
    community) and globally otherwise. Returns ``(graph, community_id)``;
    the community array drives label generation for node classification.
    """
    if not 0.0 <= mixing <= 1.0:
        raise ParameterError("mixing must be in [0, 1]")
    if num_communities < 1 or num_communities > num_nodes:
        raise ParameterError("invalid num_communities")
    rng = ensure_rng(seed)
    weights = powerlaw_weights(num_nodes, exponent=exponent, seed=rng)
    # Community sizes skewed like real social graphs (larger first).
    raw = rng.dirichlet(np.linspace(2.0, 0.5, num_communities)) * num_nodes
    sizes = np.maximum(1, raw.astype(np.int64))
    while sizes.sum() > num_nodes:
        sizes[sizes.argmax()] -= 1
    while sizes.sum() < num_nodes:
        sizes[sizes.argmin()] += 1
    community = np.repeat(np.arange(num_communities), sizes)
    rng.shuffle(community)

    members = [np.flatnonzero(community == c) for c in range(num_communities)]
    member_p = []
    comm_mass = np.empty(num_communities)
    for c in range(num_communities):
        wc = weights[members[c]]
        comm_mass[c] = wc.sum()
        member_p.append(wc / wc.sum())
    comm_p = comm_mass / comm_mass.sum()
    global_p = weights / weights.sum()

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    have = 0
    while have < num_edges:
        want = int((num_edges - have) * 1.5) + 32
        is_local = rng.random(want) < (1.0 - mixing)
        n_local = int(is_local.sum())
        s = np.empty(want, dtype=np.int64)
        d = np.empty(want, dtype=np.int64)
        # local arcs: pick a community ∝ its weight mass, endpoints inside it
        comms = rng.choice(num_communities, size=n_local, p=comm_p)
        counts = np.bincount(comms, minlength=num_communities)
        local_s = np.empty(n_local, dtype=np.int64)
        local_d = np.empty(n_local, dtype=np.int64)
        offset = 0
        order = np.argsort(comms, kind="stable")
        for c in range(num_communities):
            cnt = counts[c]
            if cnt == 0:
                continue
            local_s[offset:offset + cnt] = rng.choice(members[c], size=cnt,
                                                      p=member_p[c])
            local_d[offset:offset + cnt] = rng.choice(members[c], size=cnt,
                                                      p=member_p[c])
            offset += cnt
        s[np.flatnonzero(is_local)[order]] = local_s
        d[np.flatnonzero(is_local)[order]] = local_d
        n_glob = want - n_local
        glob_idx = np.flatnonzero(~is_local)
        s[glob_idx] = rng.choice(num_nodes, size=n_glob, p=global_p)
        d[glob_idx] = rng.choice(num_nodes, size=n_glob, p=global_p)
        src_parts.append(s)
        dst_parts.append(d)
        s_all, d_all = _dedup_pairs(np.concatenate(src_parts),
                                    np.concatenate(dst_parts), directed)
        src_parts, dst_parts = [s_all], [d_all]
        have = len(s_all)
    graph = from_edges(num_nodes, src_parts[0][:num_edges],
                       dst_parts[0][:num_edges], directed=directed)
    return graph, community


def sbm(sizes, p_within: float, p_between: float, *, directed: bool = False,
        seed=None) -> tuple[Graph, np.ndarray]:
    """Stochastic block model with uniform within/between probabilities."""
    rng = ensure_rng(seed)
    sizes = np.asarray(sizes, dtype=np.int64)
    n = int(sizes.sum())
    block = np.repeat(np.arange(len(sizes)), sizes)
    # Dense Bernoulli sampling; fine for the test-scale graphs we use.
    probs = np.where(block[:, None] == block[None, :], p_within, p_between)
    mask = rng.random((n, n)) < probs
    np.fill_diagonal(mask, False)
    if not directed:
        mask = np.triu(mask)
    src, dst = np.nonzero(mask)
    return from_edges(n, src, dst, directed=directed), block


def barabasi_albert(num_nodes: int, attach: int, *, seed=None) -> Graph:
    """Preferential attachment (undirected): each new node adds ``attach`` edges."""
    if attach < 1 or attach >= num_nodes:
        raise ParameterError("attach must be in [1, num_nodes)")
    rng = ensure_rng(seed)
    targets = list(range(attach))
    repeated: list[int] = []
    src: list[int] = []
    dst: list[int] = []
    for v in range(attach, num_nodes):
        chosen = set()
        while len(chosen) < attach:
            if repeated and rng.random() < 0.9:
                cand = repeated[int(rng.integers(0, len(repeated)))]
            else:
                cand = targets[int(rng.integers(0, len(targets)))]
            chosen.add(int(cand))
        for t in chosen:
            src.append(v)
            dst.append(t)
            repeated.extend([v, t])
        targets.append(v)
    return from_edges(num_nodes, src, dst, directed=False)


def watts_strogatz(num_nodes: int, ring_degree: int, rewire_prob: float, *,
                   seed=None) -> Graph:
    """Small-world ring lattice with random rewiring."""
    if ring_degree % 2 or ring_degree >= num_nodes:
        raise ParameterError("ring_degree must be even and < num_nodes")
    rng = ensure_rng(seed)
    src: list[int] = []
    dst: list[int] = []
    half = ring_degree // 2
    for u in range(num_nodes):
        for j in range(1, half + 1):
            v = (u + j) % num_nodes
            if rng.random() < rewire_prob:
                v = int(rng.integers(0, num_nodes))
                while v == u:
                    v = int(rng.integers(0, num_nodes))
            src.append(u)
            dst.append(v)
    return from_edges(num_nodes, src, dst, directed=False)


def rmat(scale: int, num_edges: int, *, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, directed: bool = True, seed=None) -> Graph:
    """R-MAT / Kronecker generator (power-law, community-ish structure)."""
    d = 1.0 - a - b - c
    if d < 0:
        raise ParameterError("a + b + c must be <= 1")
    rng = ensure_rng(seed)
    n = 1 << scale
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    have = 0
    probs = np.array([a, b, c, d])
    while have < num_edges:
        want = int((num_edges - have) * 1.3) + 16
        s = np.zeros(want, dtype=np.int64)
        t = np.zeros(want, dtype=np.int64)
        for _ in range(scale):
            quad = rng.choice(4, size=want, p=probs)
            s = (s << 1) | (quad >> 1)
            t = (t << 1) | (quad & 1)
        src_parts.append(s)
        dst_parts.append(t)
        s_all, d_all = _dedup_pairs(np.concatenate(src_parts),
                                    np.concatenate(dst_parts), directed)
        src_parts, dst_parts = [s_all], [d_all]
        have = len(s_all)
    return from_edges(n, src_parts[0][:num_edges], dst_parts[0][:num_edges],
                      directed=directed)
