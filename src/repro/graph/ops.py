"""Graph transformations: edge insertion/removal, subgraphs, components."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from .build import from_edges
from .graph import Graph

__all__ = ["add_arcs", "remove_arcs", "subgraph",
           "largest_connected_component", "arc_ids", "arc_index_of"]


def arc_ids(graph: Graph) -> np.ndarray:
    """Stable 64-bit key ``u * n + v`` for every stored arc (used by splits)."""
    src, dst = graph.arcs()
    return src * np.int64(graph.num_nodes) + dst


def arc_index_of(graph: Graph, sources: np.ndarray, destinations: np.ndarray) -> np.ndarray:
    """Positions of arcs ``(u, v)`` inside ``graph.indices`` (-1 if absent)."""
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    out = np.full(len(src), -1, dtype=np.int64)
    starts = graph.indptr[src]
    ends = graph.indptr[src + 1]
    for i in range(len(src)):
        row = graph.indices[starts[i]:ends[i]]
        j = np.searchsorted(row, dst[i])
        if j < len(row) and row[j] == dst[i]:
            out[i] = starts[i] + j
    return out


def add_arcs(graph: Graph, sources, destinations) -> Graph:
    """Return a copy of ``graph`` with the given arcs inserted.

    The exact counterpart of :func:`remove_arcs`: for undirected graphs
    the reverse arcs are inserted too, so the result stays symmetric,
    and the CSR rows of the result are sorted and duplicate-free like
    every :class:`Graph`. Unlike ``remove_arcs`` (where removing an
    absent arc is a harmless no-op) inserting an arc that already exists
    — in the graph, or twice in the request — raises
    :class:`ParameterError`: callers batching deltas (``DeltaGraph``)
    rely on the arc count growing by exactly ``len(sources)``. Self
    loops and out-of-range endpoints are rejected for the same reason.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    dst = np.asarray(destinations, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ParameterError("sources and destinations must have equal length")
    n = graph.num_nodes
    if len(src) == 0:
        return Graph(graph.indptr.copy(), graph.indices.copy(),
                     directed=graph.directed)
    if min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n:
        raise ParameterError(
            f"arc endpoint out of range [0, {n}) in add_arcs")
    if np.any(src == dst):
        raise ParameterError("add_arcs rejects self loops")
    if not graph.directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    new_keys = src * np.int64(n) + dst
    uniq = np.unique(new_keys)
    if len(uniq) != len(new_keys):
        # For undirected graphs this also catches (u, v) and (v, u)
        # requested together, which alias the same edge.
        raise ParameterError("duplicate arcs in add_arcs request")
    all_src, all_dst = graph.arcs()
    existing = all_src * np.int64(n) + all_dst
    clash = np.isin(uniq, existing, assume_unique=False)
    if clash.any():
        key = int(uniq[clash][0])
        raise ParameterError(
            f"arc ({key // n}, {key % n}) already present in add_arcs")
    merged = np.concatenate([existing, new_keys])
    order = np.argsort(merged, kind="stable")
    merged = merged[order]
    out_src = merged // n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_src, minlength=n), out=indptr[1:])
    return Graph(indptr, merged % n, directed=graph.directed)


def remove_arcs(graph: Graph, sources, destinations) -> Graph:
    """Return a copy of ``graph`` with the given arcs removed.

    For undirected graphs the reverse arcs are removed too, so the result
    stays symmetric. Arcs not present are ignored.
    """
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    if not graph.directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    n = graph.num_nodes
    drop = np.unique(src * np.int64(n) + dst)
    all_src, all_dst = graph.arcs()
    keys = all_src * np.int64(n) + all_dst
    keep = ~np.isin(keys, drop, assume_unique=False)
    # Rebuild without re-symmetrizing: arcs already contain both directions.
    kept_src, kept_dst = all_src[keep], all_dst[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(kept_src, minlength=n), out=indptr[1:])
    return Graph(indptr, kept_dst, directed=graph.directed)


def subgraph(graph: Graph, nodes) -> Graph:
    """Induced subgraph on ``nodes`` with ids remapped to ``0..len-1``."""
    nodes = np.asarray(sorted(set(np.asarray(nodes, dtype=np.int64).tolist())),
                       dtype=np.int64)
    remap = -np.ones(graph.num_nodes, dtype=np.int64)
    remap[nodes] = np.arange(len(nodes))
    src, dst = graph.arcs()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    if not graph.directed:
        # arcs() stores both directions; from_edges re-symmetrizes, so feed
        # each undirected edge once.
        keep &= src <= dst
    return from_edges(len(nodes), remap[src[keep]], remap[dst[keep]],
                      directed=graph.directed)


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph of the largest (weakly) connected component."""
    n_comp, labels = sp.csgraph.connected_components(
        graph.adjacency(), directed=graph.directed, connection="weak")
    if n_comp <= 1:
        return graph
    counts = np.bincount(labels)
    return subgraph(graph, np.flatnonzero(labels == counts.argmax()))
