"""Graph transformations: edge removal, subgraphs, component extraction."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .build import from_edges
from .graph import Graph

__all__ = ["remove_arcs", "subgraph", "largest_connected_component",
           "arc_ids", "arc_index_of"]


def arc_ids(graph: Graph) -> np.ndarray:
    """Stable 64-bit key ``u * n + v`` for every stored arc (used by splits)."""
    src, dst = graph.arcs()
    return src * np.int64(graph.num_nodes) + dst


def arc_index_of(graph: Graph, sources: np.ndarray, destinations: np.ndarray) -> np.ndarray:
    """Positions of arcs ``(u, v)`` inside ``graph.indices`` (-1 if absent)."""
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    out = np.full(len(src), -1, dtype=np.int64)
    starts = graph.indptr[src]
    ends = graph.indptr[src + 1]
    for i in range(len(src)):
        row = graph.indices[starts[i]:ends[i]]
        j = np.searchsorted(row, dst[i])
        if j < len(row) and row[j] == dst[i]:
            out[i] = starts[i] + j
    return out


def remove_arcs(graph: Graph, sources, destinations) -> Graph:
    """Return a copy of ``graph`` with the given arcs removed.

    For undirected graphs the reverse arcs are removed too, so the result
    stays symmetric. Arcs not present are ignored.
    """
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    if not graph.directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    n = graph.num_nodes
    drop = np.unique(src * np.int64(n) + dst)
    all_src, all_dst = graph.arcs()
    keys = all_src * np.int64(n) + all_dst
    keep = ~np.isin(keys, drop, assume_unique=False)
    # Rebuild without re-symmetrizing: arcs already contain both directions.
    kept_src, kept_dst = all_src[keep], all_dst[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(kept_src, minlength=n), out=indptr[1:])
    return Graph(indptr, kept_dst, directed=graph.directed)


def subgraph(graph: Graph, nodes) -> Graph:
    """Induced subgraph on ``nodes`` with ids remapped to ``0..len-1``."""
    nodes = np.asarray(sorted(set(np.asarray(nodes, dtype=np.int64).tolist())),
                       dtype=np.int64)
    remap = -np.ones(graph.num_nodes, dtype=np.int64)
    remap[nodes] = np.arange(len(nodes))
    src, dst = graph.arcs()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    if not graph.directed:
        # arcs() stores both directions; from_edges re-symmetrizes, so feed
        # each undirected edge once.
        keep &= src <= dst
    return from_edges(len(nodes), remap[src[keep]], remap[dst[keep]],
                      directed=graph.directed)


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph of the largest (weakly) connected component."""
    n_comp, labels = sp.csgraph.connected_components(
        graph.adjacency(), directed=graph.directed, connection="weak")
    if n_comp <= 1:
        return graph
    counts = np.bincount(labels)
    return subgraph(graph, np.flatnonzero(labels == counts.argmax()))
