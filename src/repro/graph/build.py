"""Graph constructors: from edge arrays, scipy matrices, and edge-list files."""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from ..errors import GraphFormatError
from .graph import Graph

__all__ = ["from_edges", "from_scipy", "read_edge_list", "write_edge_list"]


def from_edges(num_nodes: int, sources, destinations, *, directed: bool,
               dedup: bool = True, drop_self_loops: bool = True) -> Graph:
    """Build a :class:`Graph` from parallel source/destination arrays.

    For undirected graphs each input pair is symmetrized. Duplicate arcs
    are merged when ``dedup`` (multi-edges carry no extra information for
    any method in the paper).
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    dst = np.asarray(destinations, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphFormatError("sources and destinations must have equal length")
    if len(src) and (min(src.min(), dst.min()) < 0
                     or max(src.max(), dst.max()) >= num_nodes):
        raise GraphFormatError("edge endpoint out of range")
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])

    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if dedup and len(src):
        keep = np.empty(len(src), dtype=bool)
        keep[0] = True
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
    return Graph(indptr, dst, directed=directed)


def from_scipy(matrix: sp.spmatrix, *, directed: bool) -> Graph:
    """Build a :class:`Graph` from any scipy sparse matrix (nonzeros = arcs)."""
    csr = sp.csr_matrix(matrix)
    if csr.shape[0] != csr.shape[1]:
        raise GraphFormatError("adjacency matrix must be square")
    coo = csr.tocoo()
    return from_edges(csr.shape[0], coo.row, coo.col, directed=directed)


def read_edge_list(path: str | Path | io.TextIOBase, *, directed: bool,
                   num_nodes: int | None = None, comment: str = "#") -> Graph:
    """Read a whitespace-separated ``src dst`` edge-list file.

    Lines starting with ``comment`` are skipped. Node ids must be
    nonnegative integers; ``num_nodes`` defaults to ``max id + 1``.
    """
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            return read_edge_list(handle, directed=directed,
                                  num_nodes=num_nodes, comment=comment)
    srcs: list[int] = []
    dsts: list[int] = []
    for lineno, line in enumerate(path, start=1):
        line = line.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected 'src dst'")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer node id") from exc
        srcs.append(u)
        dsts.append(v)
    if num_nodes is None:
        num_nodes = (max(max(srcs), max(dsts)) + 1) if srcs else 0
    return from_edges(num_nodes, srcs, dsts, directed=directed)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write the graph as ``src dst`` lines (undirected edges written once)."""
    src, dst = graph.edges()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} directed={graph.directed}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            handle.write(f"{u} {v}\n")
