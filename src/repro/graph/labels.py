"""Node label generation for classification experiments.

The paper's classification datasets (Wiki, BlogCatalog, Youtube, TWeibo)
are multilabel: each node carries one or more of ``L`` tags, correlated
with its neighborhood. We reproduce that by making labels a noisy
function of planted communities from
:func:`repro.graph.generators.powerlaw_community`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = ["community_labels", "labels_to_membership"]


def community_labels(community: np.ndarray, num_labels: int, *,
                     labels_per_node: float = 1.4, noise: float = 0.1,
                     seed=None) -> np.ndarray:
    """Binary membership matrix ``(n, num_labels)`` correlated with communities.

    Each community is given an affinity distribution over labels
    (concentrated on a few "home" labels); every node samples
    ``~labels_per_node`` labels from its community's distribution, with
    probability ``noise`` replaced by a uniform label. This mirrors how
    e.g. BlogCatalog group memberships concentrate within social circles.
    """
    if num_labels < 2:
        raise ParameterError("need at least 2 labels")
    rng = ensure_rng(seed)
    community = np.asarray(community, dtype=np.int64)
    n = len(community)
    num_comms = int(community.max()) + 1

    affinity = rng.dirichlet(np.full(num_labels, 0.08), size=num_comms)
    membership = np.zeros((n, num_labels), dtype=np.int8)
    counts = np.maximum(1, rng.poisson(labels_per_node, size=n))
    for v in range(n):
        dist = affinity[community[v]]
        k = min(int(counts[v]), num_labels)
        chosen = rng.choice(num_labels, size=k, replace=False, p=dist)
        flip = rng.random(k) < noise
        if flip.any():
            chosen = chosen.copy()
            chosen[flip] = rng.integers(0, num_labels, size=int(flip.sum()))
        membership[v, chosen] = 1
    return membership


def labels_to_membership(labels: np.ndarray, num_labels: int | None = None) -> np.ndarray:
    """Convert a single-label vector into a one-hot membership matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if num_labels is None:
        num_labels = int(labels.max()) + 1
    out = np.zeros((len(labels), num_labels), dtype=np.int8)
    out[np.arange(len(labels)), labels] = 1
    return out
