"""Train/test splits for the paper's three evaluation tasks.

Link prediction (paper Section 5.2): remove 30% of randomly selected
edges, embed the residual graph, and score the removed edges against an
equal number of non-edges. On directed graphs pairs are ordered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng
from .graph import Graph
from .ops import remove_arcs

__all__ = ["LinkPredictionSplit", "link_prediction_split",
           "sample_non_edges", "train_test_nodes"]


@dataclass(frozen=True)
class LinkPredictionSplit:
    """Everything needed to run the paper's link-prediction protocol."""

    train_graph: Graph
    pos_src: np.ndarray
    pos_dst: np.ndarray
    neg_src: np.ndarray
    neg_dst: np.ndarray

    @property
    def test_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated test pairs and their 0/1 labels."""
        src = np.concatenate([self.pos_src, self.neg_src])
        dst = np.concatenate([self.pos_dst, self.neg_dst])
        labels = np.concatenate([np.ones(len(self.pos_src), dtype=np.int8),
                                 np.zeros(len(self.neg_src), dtype=np.int8)])
        return src, dst, labels


def _arc_key_set(graph: Graph) -> np.ndarray:
    src, dst = graph.arcs()
    return np.sort(src * np.int64(graph.num_nodes) + dst)


def sample_non_edges(graph: Graph, count: int, *, seed=None,
                     forbidden_keys: np.ndarray | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` distinct node pairs that are not edges of ``graph``.

    For undirected graphs pairs are unordered (reported with ``u < v``);
    for directed graphs they are ordered. ``forbidden_keys`` lets callers
    additionally exclude e.g. held-out positive edges.
    """
    n = graph.num_nodes
    if count > n * (n - 1) // 4:
        raise ParameterError("too many non-edges requested for graph size")
    rng = ensure_rng(seed)
    keys = _arc_key_set(graph)
    if forbidden_keys is not None:
        keys = np.union1d(keys, forbidden_keys)
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    have = 0
    seen = np.empty(0, dtype=np.int64)
    while have < count:
        want = int((count - have) * 1.3) + 16
        s = rng.integers(0, n, size=want)
        d = rng.integers(0, n, size=want)
        ok = s != d
        s, d = s[ok], d[ok]
        if not graph.directed:
            s, d = np.minimum(s, d), np.maximum(s, d)
        cand = s * np.int64(n) + d
        # not an edge (for undirected graphs key (u<v) is always stored)
        pos = np.searchsorted(keys, cand)
        pos = np.minimum(pos, len(keys) - 1) if len(keys) else pos
        is_edge = (keys[pos] == cand) if len(keys) else np.zeros(len(cand), bool)
        cand_ok = ~is_edge
        cand = cand[cand_ok]
        # distinct among already-collected negatives
        cand = np.setdiff1d(cand, seen, assume_unique=False)
        cand = np.unique(cand)
        seen = np.union1d(seen, cand)
        out_src.append(cand // n)
        out_dst.append(cand % n)
        have = sum(len(x) for x in out_src)
    src = np.concatenate(out_src)[:count]
    dst = np.concatenate(out_dst)[:count]
    return src, dst


def link_prediction_split(graph: Graph, *, test_fraction: float = 0.3,
                          seed=None) -> LinkPredictionSplit:
    """The paper's protocol: hold out ``test_fraction`` of edges + negatives."""
    if not 0.0 < test_fraction < 1.0:
        raise ParameterError("test_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    src, dst = graph.edges()
    num_test = int(round(len(src) * test_fraction))
    if num_test == 0 or num_test == len(src):
        raise ParameterError("test split would be empty or total")
    chosen = rng.choice(len(src), size=num_test, replace=False)
    pos_src, pos_dst = src[chosen], dst[chosen]
    train_graph = remove_arcs(graph, pos_src, pos_dst)
    pos_keys = pos_src * np.int64(graph.num_nodes) + pos_dst
    neg_src, neg_dst = sample_non_edges(graph, num_test, seed=rng,
                                        forbidden_keys=np.sort(pos_keys))
    return LinkPredictionSplit(train_graph, pos_src, pos_dst, neg_src, neg_dst)


def train_test_nodes(num_nodes: int, train_fraction: float, *, seed=None,
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Random node split used by the classification task (Fig. 6 x-axis)."""
    if not 0.0 < train_fraction < 1.0:
        raise ParameterError("train_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    perm = rng.permutation(num_nodes)
    cut = max(1, int(round(num_nodes * train_fraction)))
    cut = min(cut, num_nodes - 1)
    return np.sort(perm[:cut]), np.sort(perm[cut:])
