"""Graph substrate: CSR graphs, constructors, generators, labels, splits."""

from .build import from_edges, from_scipy, read_edge_list, write_edge_list
from .example import FIGURE1_EDGES, TABLE1_PPR, figure1_graph
from .generators import (barabasi_albert, chung_lu, erdos_renyi,
                         powerlaw_community, powerlaw_weights, rmat, sbm,
                         watts_strogatz)
from .graph import Graph
from .labels import community_labels, labels_to_membership
from .ops import (add_arcs, arc_ids, arc_index_of,
                  largest_connected_component, remove_arcs, subgraph)
from .splits import (LinkPredictionSplit, link_prediction_split,
                     sample_non_edges, train_test_nodes)

__all__ = [
    "Graph", "from_edges", "from_scipy", "read_edge_list", "write_edge_list",
    "figure1_graph", "FIGURE1_EDGES", "TABLE1_PPR",
    "erdos_renyi", "chung_lu", "powerlaw_community", "powerlaw_weights",
    "sbm", "barabasi_albert", "watts_strogatz", "rmat",
    "community_labels", "labels_to_membership",
    "add_arcs", "arc_ids", "arc_index_of", "remove_arcs", "subgraph",
    "largest_connected_component",
    "LinkPredictionSplit", "link_prediction_split", "sample_non_edges",
    "train_test_nodes",
]
