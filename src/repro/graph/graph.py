"""Immutable compressed-sparse-row graph used by every subsystem.

The paper's algorithms consume three matrices of an input graph G
(Table 2 of the paper): the adjacency matrix ``A``, the diagonal
out-degree matrix ``D`` and the transition matrix ``P = D^-1 A``.
:class:`Graph` stores the out-adjacency in CSR form (two numpy arrays)
and materializes ``A``/``P`` as :mod:`scipy.sparse` matrices on demand.

Undirected graphs are stored, as in the paper (Section 3.1), by
replacing each undirected edge {u, v} with the two arcs (u, v) and
(v, u); ``Graph.num_edges`` reports undirected edge count while
``Graph.num_arcs`` reports stored arcs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphFormatError

__all__ = ["Graph"]


class Graph:
    """A fixed graph over nodes ``0 .. n-1`` with CSR out-adjacency.

    Parameters
    ----------
    indptr, indices:
        Standard CSR row pointer (length ``n+1``) and column index
        (length ``num_arcs``) arrays. Within each row the indices must
        be sorted and unique (checked when ``validate=True``).
    directed:
        Whether the graph is directed. For undirected graphs the arc
        set must be symmetric; this is the caller's responsibility
        (use :func:`repro.graph.build.from_edges`).
    """

    __slots__ = ("indptr", "indices", "directed", "_in_degrees", "_transpose")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *,
                 directed: bool, validate: bool = False) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.directed = bool(directed)
        self._in_degrees: np.ndarray | None = None
        self._transpose: "Graph | None" = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (2x edges for undirected graphs)."""
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        """Number of edges as a user counts them (undirected edges counted once)."""
        return self.num_arcs if self.directed else self.num_arcs // 2

    @property
    def out_degrees(self) -> np.ndarray:
        """``d_out(v)`` for every node, as an int64 array."""
        return np.diff(self.indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        """``d_in(v)`` for every node (equals out-degrees when undirected)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(self.indices, minlength=self.num_nodes).astype(np.int64)
        return self._in_degrees

    # ------------------------------------------------------------------
    # neighborhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbors of node ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def has_arc(self, u: int, v: int) -> bool:
        """True if the directed arc ``(u, v)`` is present."""
        row = self.out_neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < len(row) and row[i] == v)

    def has_edge(self, u: int, v: int) -> bool:
        """True if ``(u, v)`` exists; for undirected graphs order is ignored."""
        if self.directed:
            return self.has_arc(u, v)
        return self.has_arc(u, v) or self.has_arc(v, u)

    def arcs(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, destinations)`` arrays of all stored arcs."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.out_degrees)
        return src, self.indices.copy()

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return edges once each; for undirected graphs only ``u <= v`` pairs."""
        src, dst = self.arcs()
        if self.directed:
            return src, dst
        keep = src <= dst
        return src[keep], dst[keep]

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def adjacency(self, dtype=np.float64) -> sp.csr_matrix:
        """The adjacency matrix ``A`` as a scipy CSR matrix."""
        data = np.ones(self.num_arcs, dtype=dtype)
        return sp.csr_matrix((data, self.indices, self.indptr),
                             shape=(self.num_nodes, self.num_nodes))

    def out_degree_inverse(self) -> np.ndarray:
        """``1 / d_out(v)`` with dangling nodes (``d_out = 0``) mapped to 0.

        The paper assumes no dangling nodes; we define ``D^-1`` rows of
        dangling nodes as zero so a random walk that reaches one simply
        terminates, which keeps ``P`` substochastic rather than invalid.
        """
        deg = self.out_degrees.astype(np.float64)
        inv = np.zeros_like(deg)
        np.divide(1.0, deg, out=inv, where=deg > 0)
        return inv

    def transition_matrix(self, dtype=np.float64) -> sp.csr_matrix:
        """The random-walk transition matrix ``P = D^-1 A`` (CSR)."""
        inv = self.out_degree_inverse()
        data = np.repeat(inv, self.out_degrees).astype(dtype)
        return sp.csr_matrix((data, self.indices, self.indptr),
                             shape=(self.num_nodes, self.num_nodes))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def transpose(self) -> "Graph":
        """The graph with every arc reversed (cached; self if undirected)."""
        if not self.directed:
            return self
        if self._transpose is None:
            a_t = self.adjacency().T.tocsr()
            a_t.sort_indices()
            self._transpose = Graph(a_t.indptr.astype(np.int64),
                                    a_t.indices.astype(np.int64), directed=True)
        return self._transpose

    def as_undirected(self) -> "Graph":
        """Return an undirected copy (arc set symmetrized, duplicates merged)."""
        if not self.directed:
            return self
        a = self.adjacency()
        sym = ((a + a.T) > 0).astype(np.float64).tocsr()
        sym.sort_indices()
        return Graph(sym.indptr.astype(np.int64), sym.indices.astype(np.int64),
                     directed=False)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_nodes
        if n < 0 or self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise GraphFormatError("malformed indptr")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be nondecreasing")
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphFormatError("edge endpoint out of range")
        for v in range(n):
            row = self.out_neighbors(v)
            if len(row) > 1 and np.any(np.diff(row) <= 0):
                raise GraphFormatError(f"row {v} is not sorted/unique")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return f"Graph(n={self.num_nodes}, edges={self.num_edges}, {kind})"
